"""E03 — the energy gateway's acquisition chain (paper Section III-A1).

Claims regenerated: 800 kS/s sampling on the AM335x 12-bit SAR ADC,
hardware-averaged ("decimated") to 50 kS/s; the x16 averaging buys ~2
effective bits; averaging-before-decimating suppresses the noise/aliasing
that naive decimation keeps (ablation A2).
"""

import numpy as np
import pytest

from repro.power import (
    SHUNT_SENSOR,
    PowerSensor,
    SarAdc,
    boxcar_decimate,
    effective_bits_gain,
    naive_decimate,
    quantization_snr_db,
    sine_ripple,
    trace_from_function,
)


def _acquire_chain():
    # 1.5 kW rail with a 30 kHz converter ripple rider.
    ripple = sine_ripple(25.0, 30e3)
    truth = trace_from_function(lambda t: 1500.0 + ripple(t), duration_s=0.02, rate_hz=8e6)
    adc = SarAdc(rng=np.random.default_rng(0))
    sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(1))
    raw = adc.acquire_power(truth, sensor, rate_hz=800e3)
    averaged = boxcar_decimate(raw, 16)
    naive = naive_decimate(raw, 16)
    return truth, raw, averaged, naive


def test_e03_adc_chain(benchmark, table):
    truth, raw, averaged, naive = benchmark(_acquire_chain)
    rows = [
        ["raw 800 kS/s", f"{raw.sample_rate_hz / 1e3:.0f}", f"{raw.rms_error_w(truth):.2f}",
         f"{raw.energy_error_fraction(truth) * 100:+.3f}%"],
        ["HW-averaged 50 kS/s", f"{averaged.sample_rate_hz / 1e3:.0f}",
         f"{averaged.rms_error_w(truth):.2f}",
         f"{averaged.energy_error_fraction(truth) * 100:+.3f}%"],
        ["naive decim. 50 kS/s", f"{naive.sample_rate_hz / 1e3:.0f}",
         f"{naive.rms_error_w(truth):.2f}",
         f"{naive.energy_error_fraction(truth) * 100:+.3f}%"],
    ]
    table("E03: acquisition chain (1.5 kW rail + 30 kHz ripple)",
          ["stage", "rate [kS/s]", "RMS err [W]", "energy err"], rows)

    # Rates match the paper: 800 kS/s -> 50 kS/s.
    assert raw.sample_rate_hz == pytest.approx(800e3, rel=0.01)
    assert averaged.sample_rate_hz == pytest.approx(50e3, rel=0.01)
    # Averaging buys 2 effective bits over the 12-bit converter...
    assert effective_bits_gain(16) == pytest.approx(2.0)
    assert quantization_snr_db(12) == pytest.approx(74.0, abs=0.1)
    # Energy accuracy well under 1% for the averaged stream.
    assert abs(averaged.energy_error_fraction(truth)) < 0.01


def _dc_noise_chain():
    dc = trace_from_function(lambda t: np.full_like(t, 1500.0), duration_s=0.02, rate_hz=8e6)
    adc = SarAdc(rng=np.random.default_rng(2))
    sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(3))
    raw = adc.acquire_power(dc, sensor, rate_hz=800e3)
    return raw, boxcar_decimate(raw, 16), naive_decimate(raw, 16)


def test_e03a_averaging_noise_floor(benchmark, table):
    """On a DC rail the x16 average suppresses the acquisition noise that
    naive decimation keeps — the 'averaged in HW' design choice (A2)."""
    raw, averaged, naive = benchmark(_dc_noise_chain)
    rows = [
        ["raw 800 kS/s", f"{raw.power_w.std():.2f}"],
        ["HW-averaged 50 kS/s", f"{averaged.power_w.std():.2f}"],
        ["naive decim. 50 kS/s", f"{naive.power_w.std():.2f}"],
    ]
    table("E03a: noise floor on a DC 1.5 kW rail", ["stage", "noise RMS [W]"], rows)
    # Averaging cuts the noise ~4x (sqrt(16)); naive keeps it all.
    assert averaged.power_w.std() < raw.power_w.std() / 2.5
    assert naive.power_w.std() > averaged.power_w.std() * 2
