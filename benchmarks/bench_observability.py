#!/usr/bin/env python3
"""Observability overhead + determinism gate for the fault drill.

Runs the 256-node batched fault drill twice — instrumentation disabled
(the shared no-op registry) and enabled (full metrics + tracing) — and
checks the two contracts the layer ships with:

1. **Determinism**: the telemetry event-log digests are byte-identical
   at equal seeds.  Metrics and spans are a side store; they must never
   perturb an RNG draw or an event ordering.
2. **Cost**: the enabled run's wall-clock overhead stays under the
   budget (default 10 %) against the no-op baseline.  Both sides are
   best-of-N to keep scheduler noise out of the ratio.

Also cross-checks ``ops_report()`` against ground truth (the broker's
own publish counters and the event log's scheduler counts) so the
summary numbers cannot silently drift from what happened.

Run:  python benchmarks/bench_observability.py [--nodes 256] [--reps 3]
                                               [--tolerance 0.10]
                                               [--out BENCH_observability.json]

Exits non-zero when a digest differs, a reconciliation fails, or the
overhead exceeds the tolerance.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cluster import ClusterBuilder  # noqa: E402
from repro.faults import FaultKind, FaultSpec  # noqa: E402

SEED = 2026
BUDGET_PER_NODE_W = 875.0


def campaign(n_nodes: int) -> list[FaultSpec]:
    """The bench_scale drill campaign: one of every fault kind."""
    return [
        FaultSpec(FaultKind.NODE_CRASH, at_s=25.0, duration_s=30.0, target=3 % n_nodes),
        FaultSpec(FaultKind.BROKER_OUTAGE, at_s=40.0, duration_s=14.0),
        FaultSpec(FaultKind.SENSOR_SPIKE, at_s=60.0, duration_s=8.0,
                  target=5 % n_nodes, magnitude=900.0),
        FaultSpec(FaultKind.PSU_FAILURE, at_s=70.0, duration_s=40.0),
        FaultSpec(FaultKind.CLOCK_DRIFT, at_s=80.0, duration_s=25.0,
                  target=7 % n_nodes, magnitude=2e-4),
        FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=100.0, duration_s=8.0,
                  target=9 % n_nodes),
    ]


def build_drill(n_nodes: int, observability: bool):
    budget_w = BUDGET_PER_NODE_W * n_nodes
    builder = (
        ClusterBuilder(n_nodes=n_nodes, seed=SEED)
        .with_gateways(period_s=1.0, batched=True)
        .with_scheduler(cap_w=budget_w)
        .with_faults(shelf_psu_rating_w=budget_w * 3.0 / 14.0)
        .with_observability(enabled=observability)
    )
    return builder.build_drill()


def timed_runs(n_nodes: int, observability: bool, reps: int):
    """Best-of-``reps`` wall time plus the last run's artifacts."""
    best_wall, drill, report = float("inf"), None, None
    for _ in range(reps):
        drill = build_drill(n_nodes, observability)
        t0 = time.perf_counter()
        report = drill.run(faults=campaign(n_nodes))
        best_wall = min(best_wall, time.perf_counter() - t0)
    return best_wall, drill, report


def reconcile(drill, report) -> list[str]:
    """Compare ops_report() against ground truth; returns mismatches."""
    ops = drill.ops_report()
    counts = report.log.counts()
    checks = {
        "broker.published == broker.published_count":
            ops["broker"]["published"] == drill.broker.published_count,
        "broker.rejected == broker.rejected_count":
            ops["broker"]["rejected"] == drill.broker.rejected_count,
        "scheduler.jobs_started == log job_start":
            ops["scheduler"]["jobs_started"] == counts.get("job_start", 0),
        "scheduler.decisions == log job_start":
            ops["scheduler"]["decisions"] == counts.get("job_start", 0),
        "scheduler.jobs_requeued == log job_requeued":
            ops["scheduler"]["jobs_requeued"] == counts.get("job_requeued", 0),
        "capping.actuations == log trim + cap_change":
            ops["capping"]["actuations"]
            == counts.get("trim", 0) + counts.get("cap_change", 0),
        "telemetry.samples_published > 0":
            ops["telemetry"]["samples_published"] > 0,
        "invariants.checks > 0": ops["invariants"]["checks"] > 0,
    }
    return [name for name, passed in checks.items() if not passed]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--nodes", type=int, default=256)
    parser.add_argument("--reps", type=int, default=3,
                        help="best-of-N wall-clock per side (default 3)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional overhead (default 0.10)")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_observability.json"))
    args = parser.parse_args(argv)

    off_wall, _, off_report = timed_runs(args.nodes, observability=False, reps=args.reps)
    on_wall, on_drill, on_report = timed_runs(args.nodes, observability=True, reps=args.reps)

    digests_equal = off_report.log.digest() == on_report.log.digest()
    overhead = on_wall / off_wall - 1.0
    mismatches = reconcile(on_drill, on_report)
    ops = on_drill.ops_report()

    print(f"drill n={args.nodes}: disabled {off_wall:.3f}s, enabled {on_wall:.3f}s "
          f"-> overhead {overhead * 100:+.1f}% (budget {args.tolerance * 100:.0f}%)")
    print(f"digests {'EQUAL' if digests_equal else 'DIFFER'}; "
          f"{ops['tracing']['spans_started']} spans, "
          f"{int(ops['telemetry']['samples_published'])} samples published, "
          f"{int(ops['scheduler']['jobs_started'])} jobs started")
    for name in mismatches:
        print(f"RECONCILIATION FAILED: {name}", file=sys.stderr)

    report = {
        "seed": SEED,
        "n_nodes": args.nodes,
        "reps": args.reps,
        "wall_s_disabled": round(off_wall, 4),
        "wall_s_enabled": round(on_wall, 4),
        "overhead_fraction": round(overhead, 4),
        "tolerance": args.tolerance,
        "digests_equal": digests_equal,
        "reconciliation_failures": mismatches,
        "ops_report": ops,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out}")

    ok = True
    if not digests_equal:
        print("ERROR: event-log digest changed when observability was enabled",
              file=sys.stderr)
        ok = False
    if mismatches:
        ok = False
    if overhead > args.tolerance:
        print(f"ERROR: observability overhead {overhead * 100:.1f}% exceeds "
              f"{args.tolerance * 100:.0f}% budget", file=sys.stderr)
        ok = False
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
