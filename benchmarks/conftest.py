"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one experiment from DESIGN.md's index and
prints the paper-claim vs measured rows (run with ``pytest benchmarks/
--benchmark-only -s`` to see the tables; EXPERIMENTS.md records the
outcomes).
"""

from __future__ import annotations

import pytest


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print one experiment's result table to the bench log."""
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in rows)) if rows else len(str(headers[i]))
        for i in range(len(headers))
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


@pytest.fixture
def table():
    """The row-printing helper as a fixture."""
    return print_table
