"""E08 — job power prediction from submission-time data (refs [17][18]).

Claims regenerated: per-job power is predictable before execution from
user/application/request features; trained predictors land in the cited
~5-20% MAPE band and beat naive baselines; underprediction (the unsafe
direction for capping) stays bounded.
"""

import numpy as np
import pytest

from repro.prediction import JobPowerModel, chronological_split, evaluate_model
from repro.scheduler import (
    CampaignConfig,
    Scenario,
    WorkloadConfig,
    WorkloadGenerator,
    run_campaign,
)


def _train_and_score():
    jobs = WorkloadGenerator(
        WorkloadConfig(n_jobs=600), rng=np.random.default_rng(11)
    ).generate()
    train, test = chronological_split(jobs, 0.6)
    global_mean = float(np.mean([j.true_power_per_node_w for j in train]))
    scores = {}
    scores["global mean"] = evaluate_model("global-mean", lambda j: global_mean, test)
    scores["nameplate"] = evaluate_model("nameplate", lambda j: 2000.0, test)
    for name, factory in [("per-(user,app) history", JobPowerModel.fit_per_key),
                          ("k-NN", JobPowerModel.fit_knn),
                          ("ridge", JobPowerModel.fit_ridge)]:
        model = factory(train)
        scores[name] = evaluate_model(name, model.predict_per_node, test)
    # The online RLS model, trained on the ground-truth history stream
    # (the Fig.-4 continuous-retraining path), scored on the same test set.
    from repro.prediction import FeatureEncoder, OnlineJobPowerModel
    from repro.scheduler import JobRecord

    enc = FeatureEncoder().fit(train)
    online = OnlineJobPowerModel(enc)
    for job in train:
        rec = JobRecord(job=job)
        rec.start_time_s = job.submit_time_s
        rec.end_time_s = job.submit_time_s + job.true_runtime_s
        rec.nodes = tuple(range(job.n_nodes))
        rec.energy_j = job.true_power_w * job.true_runtime_s
        online.observe(rec)
    scores["online RLS"] = evaluate_model("online-rls", online.predict_per_node, test)
    return scores


def test_e08_power_prediction(benchmark, table):
    scores = benchmark(_train_and_score)
    table(
        "E08: per-node job-power prediction (chronological split, 600 jobs)",
        ["model", "MAPE", "RMSE [W]", "bias [W]", "underpred."],
        [
            [name, f"{s.mape * 100:.1f}%", f"{s.rmse_w:.0f}", f"{s.bias_w:+.0f}",
             f"{s.underprediction_rate * 100:.0f}%"]
            for name, s in scores.items()
        ],
    )
    # Trained models beat both baselines.
    for trained in ("ridge", "k-NN", "per-(user,app) history", "online RLS"):
        assert scores[trained].mape < scores["global mean"].mape
        assert scores[trained].mape < scores["nameplate"].mape
    # And land in the cited accuracy band.
    assert scores["ridge"].mape < 0.15
    # The nameplate baseline almost never under-predicts (safe but
    # wasteful — only the rare >2 kW/node outlier run slips past it).
    assert scores["nameplate"].underprediction_rate < 0.05
    assert scores["nameplate"].bias_w > 200.0


def campaign_grid(seeds=(0, 1)):
    """The E08a campaign cells: (config, grid) for the predictor sweep.

    Shared with ``tests/diff_harness.py --bench-grids`` (warm rerun must
    simulate 0 cells).
    """
    config = CampaignConfig(n_nodes=45, n_jobs=220, root_seed=3, load_factor=1.15)
    budget = 52e3
    grid = [
        Scenario(policy="power-aware", cap_w=budget, seed_index=s,
                 predictor=spec, train_fraction=0.4, label=label)
        for s in seeds
        for label, spec in [("oracle", "oracle"),
                            ("trained ridge", "ridge"),
                            ("nameplate (2 kW/node)", "nameplate:2000")]
    ]
    return config, grid


def _dispatch_quality_campaign(seeds=(0, 1)):
    """Downstream view of E08: predictor quality as *scheduler* QoS.

    Each cell trains (where applicable) on the chronological head 40% of
    its seed's workload and dispatches the held-out tail under the same
    envelope — the campaign-runner version of E07a, over multiple seeds.
    """
    return run_campaign(*campaign_grid(seeds))


def test_e08a_dispatch_quality_campaign(benchmark, table):
    results = benchmark(_dispatch_quality_campaign)
    by_label: dict[str, list] = {}
    for r in results:
        by_label.setdefault(r.scenario.label, []).append(r.qos)
    mean_wait = {
        label: float(np.mean([q["mean_wait_s"] for q in qos_list]))
        for label, qos_list in by_label.items()
    }
    table(
        "E08a: scheduler QoS vs predictor quality, mean over 2 seeds",
        ["predictor", "mean wait [min]", "slowdown"],
        [
            [label, f"{mean_wait[label] / 60:.1f}",
             f"{np.mean([q['mean_bounded_slowdown'] for q in by_label[label]]):.2f}"]
            for label in by_label
        ],
    )
    # Averaged over seeds, better predictions give shorter queues than
    # the budget-wasting nameplate assumption.
    assert mean_wait["oracle"] <= mean_wait["nameplate (2 kW/node)"]
    assert mean_wait["trained ridge"] <= mean_wait["nameplate (2 kW/node)"]
