"""E17 — why phase III switched to POWER8+, and Unified Memory at scale.

Two claims from the project narrative:

* §I: "For the third phase ARM SoC have been replaced with IBM's
  POWER8-NVLink CPUs to exploit best-in-class acceleration technology
  which was not supported in ARM" — regenerated as the phase-II
  (ARM + GPUs over PCIe) vs phase-III (POWER8+ + NVLink) comparison on
  the NVLink-sensitive applications;
* §IV-B: NEMO's "availability of memory on the GPU can become the
  bottleneck for very big input cases.  Because of NVLink ... NEMO will
  going to be a good test case to evaluate ... NVIDIA Unified Memory" —
  regenerated as the oversubscription sweep on both link types.
"""

import pytest

from repro.apps import ExecutionPlatform, UnifiedMemoryModel, bqcd, quantum_espresso
from repro.hardware import PHASE2_NODE, ComputeNode, phase2_fabric


def _phase_comparison():
    results = {}
    for app_name, factory in [("qe", quantum_espresso), ("bqcd", bqcd)]:
        app = factory(scale=0.5, n_iterations=10)
        # Phase II: ARM host, 2 GPUs, PCIe fabric.
        p2_node = ComputeNode(spec=PHASE2_NODE)
        p2 = ExecutionPlatform("phase2-arm", node=p2_node, use_gpus=True, nvlink=False)
        p2.fabric = phase2_fabric()
        # Phase III: the Garrison node.
        p3 = ExecutionPlatform.gpu_nvlink()
        results[app_name] = (p2.run(app, n_nodes=4), p3.run(app, n_nodes=4))
    return results


def test_e17_phase2_vs_phase3(benchmark, table):
    results = benchmark(_phase_comparison)
    rows = []
    for app_name, (p2, p3) in results.items():
        rows.append([
            app_name,
            f"{p2.time_to_solution_s:.3f}",
            f"{p3.time_to_solution_s:.3f}",
            f"{p2.time_to_solution_s / p3.time_to_solution_s:.2f}x",
            f"{p2.energy_to_solution_j / p3.energy_to_solution_j:.2f}x",
        ])
    table(
        "E17: phase-II (ARM+2 GPU, PCIe) vs phase-III (Garrison, NVLink), 4 nodes",
        ["app", "phase-II TTS [s]", "phase-III TTS [s]", "speedup", "energy ratio"],
        rows,
    )
    for app_name, (p2, p3) in results.items():
        # The Garrison node (4 GPUs + NVLink) wins time-to-solution
        # decisively on the NVLink-sensitive codes.
        assert p3.time_to_solution_s < p2.time_to_solution_s / 1.5, app_name


def _oversubscription_sweep():
    ratios = [0.5, 1.0, 1.25, 1.5, 2.0]
    return (
        ratios,
        UnifiedMemoryModel.nvlink().sweep(ratios),
        UnifiedMemoryModel.pcie().sweep(ratios),
    )


def test_e17a_unified_memory_oversubscription(benchmark, table):
    ratios, nvlink, pcie = benchmark(_oversubscription_sweep)
    table(
        "E17a: Unified Memory slowdown vs working set (x HBM capacity)",
        ["working set", "NVLink slowdown", "PCIe slowdown"],
        [
            [f"{r:g}x", f"{n.slowdown:.2f}x", f"{p.slowdown:.2f}x"]
            for r, n, p in zip(ratios, nvlink, pcie)
        ],
    )
    # Fully resident: no penalty on either.
    assert nvlink[0].slowdown == pytest.approx(1.0)
    assert pcie[0].slowdown == pytest.approx(1.0)
    # Oversubscribed: both pay, PCIe pays several times more — the
    # paper's reason NEMO's big cases are a POWER+NVLink test case.
    for n, p in zip(nvlink[2:], pcie[2:]):
        assert n.slowdown > 1.5
        assert p.slowdown > n.slowdown * 2
