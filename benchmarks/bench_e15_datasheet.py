"""E15 — component datasheet micro-envelope (paper Sections II-A/B/D).

Claims regenerated: Centaur links at 28.8 GB/s each (3 x 9.6 GB/s, 2:1
read:write) rolling up to 230 GB/s sustained per fully-populated socket
at 40 ns latency; P100 FP64/32/16 peaks of 5.3/10.6/21.2 TFlops; NVLink
links at 40 GB/s bidirectional ganging to 160 GB/s on 4 links, with the
Garrison's 2-link gangs at 80 GB/s bidirectional CPU<->GPU and GPU<->GPU.
"""

import pytest

from repro.hardware import (
    CENTAUR_DDR4,
    NVLINK_1,
    TESLA_P100,
    CentaurLink,
    GpuModel,
    MemorySubsystem,
    NodeFabric,
)


def _datasheet_rollup():
    link = CentaurLink()
    full_socket = MemorySubsystem(
        CENTAUR_DDR4.__class__(**{**CENTAUR_DDR4.__dict__, "channels": 8})
    )
    gpu = GpuModel()
    fabric = NodeFabric()
    return link, full_socket, gpu, fabric


def test_e15_datasheet(benchmark, table):
    link, full_socket, gpu, fabric = benchmark(_datasheet_rollup)
    table(
        "E15: datasheet roll-up (paper claim vs model)",
        ["quantity", "paper", "measured"],
        [
            ["Centaur link bandwidth", "28.8 GB/s", f"{link.total_bandwidth_Bps / 1e9:.1f} GB/s"],
            ["Centaur lanes", "9.6 GB/s, 2:1 R:W",
             f"{link.lane_bandwidth_Bps / 1e9:.1f} GB/s, {link.read_lanes}:{link.write_lanes}"],
            ["socket sustained BW (8 Centaur)", "230 GB/s",
             f"{full_socket.sustained_bandwidth_Bps / 1e9:.0f} GB/s"],
            ["memory latency", "40 ns", f"{full_socket.latency_s * 1e9:.0f} ns"],
            ["socket capacity", "1 TB", f"{full_socket.spec.capacity_per_socket_bytes / 1024**4:.0f} TB"],
            ["socket L4 (8 Centaur)", "128 MB", f"{full_socket.l4_cache_bytes / 1024**2:.0f} MB"],
            ["P100 FP64", "5.3 TFlops", f"{gpu.spec.fp64_flops / 1e12:.1f} TFlops"],
            ["P100 FP32", "10.6 TFlops", f"{gpu.spec.fp32_flops / 1e12:.1f} TFlops"],
            ["P100 FP16", "21.2 TFlops", f"{gpu.spec.fp16_flops / 1e12:.1f} TFlops"],
            ["NVLink per link (bidir)", "40 GB/s", f"{NVLINK_1.bidir_bandwidth_Bps / 1e9:.0f} GB/s"],
            ["NVLink 4-link gang (bidir)", "160 GB/s",
             f"{4 * NVLINK_1.bidir_bandwidth_Bps / 1e9:.0f} GB/s"],
            ["Garrison CPU<->GPU gang (bidir)", "80 GB/s",
             f"{2 * fabric.transfer('cpu0', 'gpu0', 1).bandwidth_Bps / 1e9:.0f} GB/s"],
        ],
    )
    assert link.total_bandwidth_Bps == pytest.approx(28.8e9)
    assert full_socket.sustained_bandwidth_Bps == pytest.approx(230e9)
    assert full_socket.l4_cache_bytes == 128 * 1024**2
    assert gpu.spec.fp64_flops == pytest.approx(5.3e12)
    assert gpu.spec.fp16_flops == pytest.approx(21.2e12)
    assert NVLINK_1.bidir_bandwidth_Bps == pytest.approx(40e9)
    # Garrison wiring: 80 GB/s bidirectional CPU<->GPU and GPU<->GPU gangs.
    assert fabric.transfer("cpu0", "gpu0", 1).bandwidth_Bps == pytest.approx(40e9)
    assert fabric.gpu_peer_bandwidth_Bps(0, 1) == pytest.approx(40e9)
