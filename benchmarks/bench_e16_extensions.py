"""E16 — designed-for extensions: MS3-style envelopes and data intelligence.

Two capabilities the paper designs for without evaluating:

* §III-A2: "The power cap can be specified by the system administrator
  to follow infrastructure requirements" — exercised here as an
  MS3-style ([15], "do less when it's too hot") time-varying envelope:
  a demand-response curtailment window mid-campaign;
* §III-A1: monitoring "runs data intelligence on the monitored data to
  identify sources of not-optimality and hazards" — exercised as the
  anomaly/hazard/inefficiency detectors over a campaign's telemetry.
"""

import numpy as np
import pytest

from repro.monitoring import EfficiencyAuditor, HazardDetector, PowerAnomalyDetector
from repro.power import PowerTrace
from repro.scheduler import (
    ClusterSimulator,
    TimeVaryingBudgetScheduler,
    WorkloadConfig,
    WorkloadGenerator,
    heat_wave_budget,
)

N_NODES = 45


def _curtailment_campaign():
    jobs = WorkloadGenerator(
        WorkloadConfig(n_jobs=150, cluster_nodes=N_NODES, load_factor=1.1),
        rng=np.random.default_rng(16),
    ).generate()
    horizon = max(j.submit_time_s for j in jobs) * 1.5
    wave = (horizon * 0.35, horizon * 0.55)
    budget = heat_wave_budget(65e3, 35e3, *wave)
    policy = TimeVaryingBudgetScheduler(
        budget, predictor=lambda j: j.true_power_w,
        lookahead_s=24 * 3600.0, lookahead_step_s=1800.0,
    )
    result = ClusterSimulator(N_NODES, policy).run(jobs)
    return result, wave


def test_e16_time_varying_envelope(benchmark, table):
    result, wave = benchmark(_curtailment_campaign)
    trace = result.power_trace
    before = trace.slice(0.0, wave[0])
    inside = trace.slice(*wave)
    after = trace.slice(wave[1], trace.times_s[-1])
    table(
        "E16: demand-response curtailment (65 kW -> 35 kW -> 65 kW)",
        ["window", "mean [kW]", "peak [kW]"],
        [
            ["before wave", f"{before.mean_power_w() / 1e3:.1f}", f"{before.peak_power_w() / 1e3:.1f}"],
            ["curtailment", f"{inside.mean_power_w() / 1e3:.1f}", f"{inside.peak_power_w() / 1e3:.1f}"],
            ["after wave", f"{after.mean_power_w() / 1e3:.1f}", f"{after.peak_power_w() / 1e3:.1f}"],
        ],
    )
    # The envelope steps down inside the window and recovers after it.
    assert inside.mean_power_w() <= 35e3 * 1.05
    assert inside.peak_power_w() <= 35e3 * 1.15  # lone force-admission slack
    assert after.peak_power_w() > 45e3
    # No job was trimmed: the envelope held by ordering alone.
    assert result.mean_stretch() == pytest.approx(1.0)


def _intelligence_sweep():
    rng = np.random.default_rng(17)
    t = np.arange(20000) / 100.0
    # A rack trace with a fault spike and a spell of over-limit pressure.
    rack = np.where((t % 40) < 28, 27e3, 18e3) + rng.normal(0, 100, t.size)
    rack[5000] = 45e3                      # sensor/fault spike
    rack[12000:13000] = 31e3               # 10 s above the 30 kW feed
    trace = PowerTrace(t, rack)
    anomalies = PowerAnomalyDetector(threshold=8.0, min_sigma_w=50.0).scan(trace, "rack0")
    hazards = HazardDetector(limit_w=30e3, dwell_s=5.0).scan(trace, "rack0")
    idle = EfficiencyAuditor().audit_idle_capacity(utilization=0.45, queue_length=9)
    return anomalies, hazards, idle


def test_e16a_data_intelligence(benchmark, table):
    anomalies, hazards, idle = benchmark(_intelligence_sweep)
    rows = [[f.kind, f.severity, f.subject, f.message[:64]] for f in anomalies + hazards + idle]
    table("E16a: findings raised by the intelligence layer",
          ["kind", "severity", "subject", "message"], rows)
    assert len(anomalies) == 1 and anomalies[0].value == pytest.approx(45e3)
    severities = {f.severity for f in hazards}
    assert "critical" in severities  # the over-limit spell
    assert len(idle) == 1            # nodes idle while jobs queue
