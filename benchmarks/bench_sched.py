#!/usr/bin/env python3
"""Scale sweep of the scheduler hot path across all three simulator cores.

Runs power-capped and uncapped scheduling across (nodes × jobs) points
with the structure-of-arrays core (``core="array"``), the event-calendar
core and the naive ``reference`` loop, and records for each point:

* wall-clock seconds and jobs/s per core, the calendar-vs-reference
  speedup, and the array-vs-calendar speedup;
* the result content digest of every core that ran, to prove the fast
  cores replay the reference float-for-float at equal seeds (the
  DESIGN.md §9–10 equivalence contract) — a speedup claim is
  meaningless if the fast core computes something else;
* a campaign-runner scaling measurement: a fixed policy×cap×seed grid
  through ``run_campaign`` serially and with a process pool, with the
  merged-campaign digests compared (pool size must not change results).

The reference core is O(running) per event, so it is skipped above
``--max-ref-jobs``; EASY backfill is O(backlog) per decision under a
cap, so the ``easy_capped`` mode is skipped above ``--max-easy-jobs``
(the replay-scale mega point ``16384x1000000`` is FIFO/uncapped — the
configuration the array core's flat loop is built for).

Run:  python benchmarks/bench_sched.py [--points 64x2000,16384x1000000]
                                       [--out BENCH_sched.json]

Writes ``BENCH_sched.json`` at the repo root by default; the
``--check-against`` gate fails on a >tolerance speedup regression
against a committed baseline (ratio of ratios, so runner speed cancels
out) and on any digest mismatch between any pair of cores.
"""

from __future__ import annotations

import argparse
import cProfile
import io
import json
import os
import pstats
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.scheduler import (  # noqa: E402
    CampaignConfig,
    ClusterSimulator,
    EasyBackfillScheduler,
    FifoScheduler,
    Scenario,
    WorkloadConfig,
    WorkloadGenerator,
    campaign_digest,
    result_digest,
    run_campaign,
)

SEED = 2026
#: Comfortable budget share per node: capped runs actually trim without
#: pinning every job at the floor.
BUDGET_PER_NODE_W = 1150.0

#: (mode name, policy factory, capped?) — one uncapped and one capped
#: family, so the sweep covers both the trim-idle and trim-active paths.
MODES = (
    ("fifo_uncapped", FifoScheduler, False),
    ("easy_capped", EasyBackfillScheduler, True),
)


def make_jobs(n_nodes: int, n_jobs: int) -> list:
    return WorkloadGenerator(
        WorkloadConfig(n_jobs=n_jobs, cluster_nodes=n_nodes, load_factor=0.9),
        rng=np.random.default_rng(SEED),
    ).generate()


def run_core(jobs, n_nodes: int, policy_factory, capped: bool, core: str,
             repeats: int = 1, budget_s: float = 40.0) -> dict:
    """Best-of-``repeats`` wall time, stopping once ``budget_s`` of
    measurement has accumulated (short points are noise-dominated
    single-shot; multi-minute points are long enough to time once).
    Best-of is the right statistic here: the simulator is deterministic,
    so every slowdown is runner noise.  A fresh simulator per repeat
    keeps runs independent."""
    wall_s = float("inf")
    spent = 0.0
    result = None
    for _ in range(max(repeats, 1)):
        sim = ClusterSimulator(
            n_nodes=n_nodes,
            policy=policy_factory(),
            cap_w=BUDGET_PER_NODE_W * n_nodes if capped else None,
            core=core,
        )
        t0 = time.perf_counter()
        result = sim.run(jobs)
        w = time.perf_counter() - t0
        wall_s = min(wall_s, w)
        spent += w
        if spent >= budget_s:
            break
    return {
        "core": core,
        "wall_s": round(wall_s, 4),
        "jobs_per_s": round(len(jobs) / wall_s, 1),
        "digest": result_digest(result),
        "makespan_s": round(float(result.makespan_s), 1),
        "mean_stretch": round(result.mean_stretch(), 4),
    }


def warmup() -> None:
    """Import every core and warm allocator/caches before timing.

    Without this the first timed run absorbs lazy module imports and
    first-touch costs, skewing whichever core runs first.
    """
    jobs = make_jobs(16, 200)
    for core in ("array", "calendar", "reference"):
        run_core(jobs, 16, FifoScheduler, capped=True, core=core)


def profile_run(jobs, n_nodes: int, policy_factory, capped: bool, core: str,
                out_path: Path, top_n: int = 30) -> None:
    """One profiled (untimed) run; top-``top_n`` by tottime to a file.

    Profiling runs *after* the timed repeats so instrumentation overhead
    never leaks into the recorded wall times.
    """
    sim = ClusterSimulator(
        n_nodes=n_nodes,
        policy=policy_factory(),
        cap_w=BUDGET_PER_NODE_W * n_nodes if capped else None,
        core=core,
    )
    prof = cProfile.Profile()
    prof.enable()
    sim.run(jobs)
    prof.disable()
    buf = io.StringIO()
    pstats.Stats(prof, stream=buf).sort_stats("tottime").print_stats(top_n)
    out_path.write_text(buf.getvalue())
    print(f"  profile -> {out_path}")


def bench_point(n_nodes: int, n_jobs: int, max_ref_jobs: int,
                max_easy_jobs: int, repeats: int = 1, budget_s: float = 40.0,
                profile_dir: Path | None = None,
                ) -> tuple[list[dict], dict[str, dict], dict[str, bool]]:
    """All modes × cores at one sweep point.

    Digest equality is checked across *every* pair of cores that ran the
    mode; the returned flag is per mode (all pairs equal)."""
    jobs = make_jobs(n_nodes, n_jobs)
    runs, speedups, digests_equal = [], {}, {}
    for mode, policy_factory, capped in MODES:
        if mode == "easy_capped" and n_jobs > max_easy_jobs:
            print(f"n={n_nodes:5d} jobs={n_jobs:7d} {mode:>13}: skipped "
                  f"(above --max-easy-jobs={max_easy_jobs})")
            continue
        rec = {"point": f"{n_nodes}x{n_jobs}", "mode": mode,
               "n_nodes": n_nodes, "n_jobs": n_jobs}
        arr = run_core(jobs, n_nodes, policy_factory, capped, core="array",
                       repeats=repeats, budget_s=budget_s)
        cal = run_core(jobs, n_nodes, policy_factory, capped, core="calendar",
                       repeats=repeats, budget_s=budget_s)
        runs.append({**rec, **arr})
        runs.append({**rec, **cal})
        by_core = {"array": arr, "calendar": cal}
        mode_speedups = {
            "array_vs_calendar": round(cal["wall_s"] / arr["wall_s"], 2),
        }
        if n_jobs <= max_ref_jobs:
            ref = run_core(jobs, n_nodes, policy_factory, capped,
                           core="reference", repeats=repeats, budget_s=budget_s)
            runs.append({**rec, **ref})
            by_core["reference"] = ref
            mode_speedups["calendar_vs_reference"] = round(
                ref["wall_s"] / cal["wall_s"], 2)
        digests = {c: r["digest"] for c, r in by_core.items()}
        equal = len(set(digests.values())) == 1
        speedups[mode] = mode_speedups
        digests_equal[mode] = equal
        ref_note = (
            f" ref {by_core['reference']['wall_s']:8.2f} s"
            if "reference" in by_core else ""
        )
        print(f"n={n_nodes:5d} jobs={n_jobs:7d} {mode:>13}: "
              f"array {arr['wall_s']:8.2f} s ({arr['jobs_per_s']:>9,.0f} jobs/s) "
              f"vs calendar {cal['wall_s']:8.2f} s{ref_note} -> "
              f"{mode_speedups['array_vs_calendar']:5.2f}x "
              f"(digests {'EQUAL' if equal else 'DIFFER'})")
        if profile_dir is not None:
            profile_run(jobs, n_nodes, policy_factory, capped, "array",
                        profile_dir / f"PROFILE_{n_nodes}x{n_jobs}_{mode}_array.txt")
    return runs, speedups, digests_equal


def bench_campaign(processes: int) -> dict:
    """Fixed grid, serial vs pooled; digests must match exactly."""
    config = CampaignConfig(n_nodes=64, n_jobs=1000, root_seed=SEED, load_factor=0.9)
    grid = [
        Scenario(policy=policy, cap_w=BUDGET_PER_NODE_W * 64 if capped else None,
                 seed_index=seed)
        for policy in ("fifo", "easy")
        for capped in (False, True)
        for seed in (0, 1)
    ]
    t0 = time.perf_counter()
    serial = run_campaign(config, grid, processes=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    pooled = run_campaign(config, grid, processes=processes)
    pooled_s = time.perf_counter() - t0
    equal = campaign_digest(serial) == campaign_digest(pooled)
    speedup = serial_s / pooled_s
    cpu_count = os.cpu_count() or 1
    # A process pool cannot beat serial on a single CPU: the measurement
    # is still recorded (digest equality must hold regardless), but it is
    # marked untrusted so regression gates never flag single-CPU boxes.
    trusted = cpu_count >= 2 and processes >= 2
    note = "" if trusted else " [untrusted: <2 CPUs]"
    print(f"campaign ({len(grid)} cells): serial {serial_s:.2f} s vs "
          f"pool({processes}) {pooled_s:.2f} s -> {speedup:.2f}x on "
          f"{cpu_count} cores (digests {'EQUAL' if equal else 'DIFFER'})"
          f"{note}")
    return {
        "n_cells": len(grid),
        "processes": processes,
        "cpu_count": cpu_count,
        "serial_wall_s": round(serial_s, 3),
        "pooled_wall_s": round(pooled_s, 3),
        "pool_speedup": round(speedup, 2),
        "pool_speedup_trusted": trusted,
        "digests_equal": equal,
    }


def _pool_speedup_trusted(campaign: dict | None) -> bool:
    """Whether a report's pool-speedup number means anything.

    Older baselines predate the explicit flag: fall back to the recorded
    ``cpu_count`` (a pool can only help with >= 2 CPUs).
    """
    if not campaign:
        return False
    if "pool_speedup_trusted" in campaign:
        return bool(campaign["pool_speedup_trusted"])
    return (campaign.get("cpu_count") or 1) >= 2 and campaign.get(
        "processes", 1) >= 2


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--points",
                        default="64x1000,64x2000,256x10000,1024x50000,"
                                "1024x100000,4096x200000,16384x1000000",
                        help="comma-separated NODESxJOBS sweep points")
    parser.add_argument("--max-ref-jobs", type=int, default=50_000,
                        help="skip the reference core above this job count")
    parser.add_argument("--max-easy-jobs", type=int, default=200_000,
                        help="skip the easy_capped mode above this job count")
    parser.add_argument("--profile", action="store_true",
                        help="after timing each point, run one profiled "
                             "array-core pass per mode and write the "
                             "cProfile top-N next to the JSON report")
    parser.add_argument("--repeats", type=int, default=5,
                        help="best-of-N timing per core (default 5)")
    parser.add_argument("--repeat-budget-s", type=float, default=40.0,
                        help="stop repeating a core once this much "
                             "measurement time has accumulated (default 40)")
    parser.add_argument("--campaign-processes", type=int, default=4,
                        help="pool size for the campaign scaling measurement")
    parser.add_argument("--skip-campaign", action="store_true",
                        help="only run the core sweep")
    parser.add_argument("--out", default=str(Path(__file__).resolve().parent.parent
                                             / "BENCH_sched.json"),
                        help="where to write the JSON report")
    parser.add_argument("--check-against", default=None, metavar="BASELINE.json",
                        help="fail if a core speedup regressed vs this baseline "
                             "report (ratio-of-ratios, so runner speed cancels "
                             "out) or any digest pair diverged")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional speedup regression (default 0.25)")
    args = parser.parse_args(argv)
    points = []
    for token in args.points.split(","):
        if token:
            n, j = token.lower().split("x")
            points.append((int(n), int(j)))

    warmup()
    profile_dir = Path(args.out).resolve().parent if args.profile else None
    runs: list[dict] = []
    speedups: dict[str, dict[str, dict]] = {}
    digests_equal: dict[str, dict[str, bool]] = {}
    for n_nodes, n_jobs in points:
        point_runs, point_speedups, point_equal = bench_point(
            n_nodes, n_jobs, args.max_ref_jobs, args.max_easy_jobs,
            repeats=args.repeats, budget_s=args.repeat_budget_s,
            profile_dir=profile_dir)
        runs += point_runs
        key = f"{n_nodes}x{n_jobs}"
        if point_speedups:
            speedups[key] = point_speedups
            digests_equal[key] = point_equal

    campaign = None if args.skip_campaign else bench_campaign(args.campaign_processes)

    report = {
        "seed": SEED,
        "points": [f"{n}x{j}" for n, j in points],
        "runs": runs,
        "core_speedup_by_point": speedups,
        "digests_equal_by_point": digests_equal,
        "campaign": campaign,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\nwrote {args.out}")

    ok = all(all(v.values()) for v in digests_equal.values())
    if not ok:
        print("ERROR: core result digests diverged", file=sys.stderr)
    if campaign is not None and not campaign["digests_equal"]:
        print("ERROR: campaign digests depend on pool size", file=sys.stderr)
        ok = False

    if args.check_against:
        baseline = json.loads(Path(args.check_against).read_text())
        base_speedups = baseline.get("core_speedup_by_point", {})
        for key, by_mode in speedups.items():
            for mode, pairs in by_mode.items():
                base_pairs = base_speedups.get(key, {}).get(mode)
                if base_pairs is None:
                    continue
                if not isinstance(pairs, dict):  # pre-array baseline layout
                    pairs = {"calendar_vs_reference": pairs}
                if not isinstance(base_pairs, dict):
                    base_pairs = {"calendar_vs_reference": base_pairs}
                for pair, measured in pairs.items():
                    expected = base_pairs.get(pair)
                    if expected is None:
                        continue
                    floor = expected * (1.0 - args.tolerance)
                    status = "ok" if measured >= floor else "REGRESSED"
                    print(f"speedup check {key}/{mode}/{pair}: measured "
                          f"{measured:.2f}x vs baseline {expected:.2f}x "
                          f"(floor {floor:.2f}x) -> {status}")
                    if measured < floor:
                        ok = False
        base_campaign = baseline.get("campaign")
        if (campaign is not None
                and _pool_speedup_trusted(campaign)
                and _pool_speedup_trusted(base_campaign)):
            measured = campaign["pool_speedup"]
            expected = base_campaign["pool_speedup"]
            floor = expected * (1.0 - args.tolerance)
            status = "ok" if measured >= floor else "REGRESSED"
            print(f"speedup check campaign/pool_speedup: measured "
                  f"{measured:.2f}x vs baseline {expected:.2f}x "
                  f"(floor {floor:.2f}x) -> {status}")
            if measured < floor:
                ok = False
        elif campaign is not None:
            print("speedup check campaign/pool_speedup: skipped "
                  "(untrusted on <2 CPUs)")

    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
