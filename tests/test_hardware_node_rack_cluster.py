"""Tests for node / rack / cluster roll-ups and capping actuators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import (
    DAVIDE_SYSTEM,
    GARRISON_NODE,
    Cluster,
    ComputeNode,
    Rack,
)


class TestComputeNode:
    def test_nameplate_matches_paper_22_tflops(self):
        node = ComputeNode()
        assert node.nameplate_flops == pytest.approx(22e12, rel=0.03)

    def test_full_load_power_near_2kw(self):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        assert node.power_w() == pytest.approx(2000, rel=0.1)

    def test_idle_power_well_below_full(self):
        node = ComputeNode()
        assert node.power_w() < 700

    def test_breakdown_sums_to_total(self):
        node = ComputeNode()
        node.set_utilization(cpu=0.6, gpu=0.8, memory_intensity=0.4)
        bd = node.power_breakdown()
        assert bd.total_w == pytest.approx(node.power_w())
        d = bd.as_dict()
        assert set(d) == {"cpu0", "cpu1", "gpu0", "gpu1", "gpu2", "gpu3", "mem", "misc"}
        assert sum(d.values()) == pytest.approx(bd.total_w)

    def test_utilization_broadcast_and_lists(self):
        node = ComputeNode()
        node.set_utilization(cpu=[0.1, 0.9], gpu=[0.2, 0.4, 0.6, 0.8])
        assert node.cpu_utilization == [0.1, 0.9]
        assert node.gpu_utilization == [0.2, 0.4, 0.6, 0.8]
        with pytest.raises(ValueError):
            node.set_utilization(cpu=[0.1])  # wrong length
        with pytest.raises(ValueError):
            node.set_utilization(cpu=1.2)

    def test_idle_helper(self):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0)
        assert not node.is_idle
        node.idle()
        assert node.is_idle

    def test_power_cap_reduces_power(self):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        uncapped = node.power_w()
        capped = node.apply_power_cap(1500.0)
        assert capped < uncapped
        assert capped == pytest.approx(1500.0, rel=0.12)

    def test_power_cap_reduces_performance(self):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0)
        node.apply_power_cap(1200.0)
        assert node.relative_performance() < 1.0

    def test_loose_cap_is_noop(self):
        node = ComputeNode()
        node.set_utilization(cpu=0.2, gpu=0.2)
        before = node.power_w()
        after = node.apply_power_cap(3000.0)
        assert after == pytest.approx(before)
        assert node.relative_performance() == pytest.approx(1.0)

    def test_uncap_restores_performance(self):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0)
        node.apply_power_cap(1200.0)
        node.apply_power_cap(None)
        assert node.relative_performance() == pytest.approx(1.0)
        assert node.power_cap_w is None

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ComputeNode().apply_power_cap(0.0)

    @settings(max_examples=25)
    @given(
        st.floats(min_value=800.0, max_value=2500.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_cap_approximately_respected(self, cap, cu, gu):
        node = ComputeNode()
        node.set_utilization(cpu=cu, gpu=gu, memory_intensity=0.5)
        achieved = node.apply_power_cap(cap)
        # Fixed rails (mem+misc+idle floors) bound how low we can go.
        floor = 700.0
        assert achieved <= max(cap * 1.15, floor)


class TestRack:
    def test_node_count_bounds(self):
        with pytest.raises(ValueError):
            Rack(n_nodes=0)
        with pytest.raises(ValueError):
            Rack(n_nodes=16)

    def test_node_ids_are_global(self):
        r1 = Rack(rack_id=1)
        assert [n.node_id for n in r1.nodes] == list(range(15, 30))

    def test_facility_power_includes_conversion_loss(self):
        rack = Rack()
        for n in rack.nodes:
            n.set_utilization(cpu=0.5, gpu=0.5)
        assert rack.facility_power_w() > rack.it_power_w()
        assert rack.conversion_loss_w() > 0

    def test_full_load_fits_32kw_feed(self):
        rack = Rack()
        for n in rack.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        assert rack.within_feed_capacity()

    def test_fan_power_cube_law(self):
        rack = Rack()
        rack.set_fan_fraction(1.0)
        full = rack.fan_power_w()
        rack.set_fan_fraction(0.5)
        assert rack.fan_power_w() == pytest.approx(full / 8)
        with pytest.raises(ValueError):
            rack.set_fan_fraction(1.5)

    def test_rack_cap_reduces_power(self):
        rack = Rack()
        for n in rack.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        before = rack.facility_power_w()
        after = rack.apply_power_cap(before * 0.8)
        assert after < before

    def test_heat_output_equals_facility_power(self):
        rack = Rack()
        assert rack.heat_output_w() == pytest.approx(rack.facility_power_w())


class TestCluster:
    def test_node_count_matches_paper_45(self):
        assert Cluster().n_nodes == 45

    def test_nameplate_near_1_pflops(self):
        cluster = Cluster()
        assert cluster.nameplate_flops == pytest.approx(1e15, rel=0.05)

    def test_full_load_under_100kw(self):
        cluster = Cluster()
        cluster.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        assert cluster.facility_power_w() < 100e3

    def test_per_rack_feeds_within_32kw(self):
        cluster = Cluster()
        cluster.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        assert np.all(cluster.per_rack_power_w() <= 32e3)

    def test_energy_efficiency_near_10_gflops_per_w(self):
        # Paper envelope: 1 PFlops / <100 kW => ~10 GFlops/W nameplate.
        cluster = Cluster()
        cluster.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        eff = cluster.energy_efficiency_flops_per_w()
        assert eff == pytest.approx(10e9, rel=0.10)
        assert eff > 9e9

    def test_node_lookup(self):
        cluster = Cluster()
        assert cluster.node(17).node_id == 17
        with pytest.raises(KeyError):
            cluster.node(999)

    def test_system_cap_reduces_power(self):
        cluster = Cluster()
        cluster.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        before = cluster.facility_power_w()
        after = cluster.apply_system_cap(before * 0.75)
        assert after < before
        assert after == pytest.approx(before * 0.75, rel=0.15)

    def test_uncap_restores(self):
        cluster = Cluster()
        cluster.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        before = cluster.facility_power_w()
        cluster.apply_system_cap(before * 0.7)
        cluster.uncap()
        assert cluster.facility_power_w() == pytest.approx(before, rel=1e-6)

    def test_iteration(self):
        assert len(list(Cluster())) == 45
