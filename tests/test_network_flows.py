"""Tests for max-min fair flow allocation on the fabric."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    FatTree,
    allocate_fat_tree_flows,
    completion_time_s,
    max_min_fair,
    permutation_traffic,
)


class TestMaxMinFair:
    def test_single_flow_gets_the_link(self):
        alloc = max_min_fair([["L"]], {"L": 100.0})
        assert alloc.rates_Bps[0] == pytest.approx(100.0)
        assert alloc.bottleneck_links == ("L",)

    def test_two_flows_share_equally(self):
        alloc = max_min_fair([["L"], ["L"]], {"L": 100.0})
        assert np.allclose(alloc.rates_Bps, 50.0)

    def test_classic_three_flow_example(self):
        # Flows: A on L1, B on L1+L2, C on L2; capacities L1=100, L2=60.
        # Max-min: B and C split L2 until B or C freezes... progressive
        # filling: all grow to 30 (L2 saturates with B+C), then A grows
        # alone to 70 (L1 = 100 - B's 30).
        alloc = max_min_fair(
            [["L1"], ["L1", "L2"], ["L2"]],
            {"L1": 100.0, "L2": 60.0},
        )
        assert alloc.rates_Bps[1] == pytest.approx(30.0)
        assert alloc.rates_Bps[2] == pytest.approx(30.0)
        assert alloc.rates_Bps[0] == pytest.approx(70.0)

    def test_demand_caps_respected(self):
        alloc = max_min_fair([["L"], ["L"]], {"L": 100.0}, demands_Bps=[10.0, 1000.0])
        assert alloc.rates_Bps[0] == pytest.approx(10.0)
        assert alloc.rates_Bps[1] == pytest.approx(90.0)

    def test_empty_flow_list(self):
        alloc = max_min_fair([], {})
        assert alloc.total_throughput_Bps == 0.0

    def test_validation(self):
        with pytest.raises(KeyError):
            max_min_fair([["missing"]], {})
        with pytest.raises(ValueError):
            max_min_fair([["L"]], {"L": 0.0})
        with pytest.raises(ValueError):
            max_min_fair([["L"]], {"L": 1.0}, demands_Bps=[0.0])
        with pytest.raises(ValueError):
            max_min_fair([["L"]], {"L": 1.0}, demands_Bps=[1.0, 2.0])

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(min_value=1, max_value=8),
        st.floats(min_value=10.0, max_value=1000.0),
    )
    def test_shared_link_shared_equally(self, n_flows, capacity):
        alloc = max_min_fair([["L"]] * n_flows, {"L": capacity})
        assert np.allclose(alloc.rates_Bps, capacity / n_flows)
        assert alloc.total_throughput_Bps == pytest.approx(capacity)


class TestFatTreeFlows:
    def test_nonblocking_tree_serves_full_demand(self):
        tree = FatTree(n_nodes=36, switch_radix=36, oversubscription=1.0)
        bw = tree.link.bandwidth_Bps
        flows = permutation_traffic(36, bw, shift=tree.shape.hosts_per_leaf)
        alloc = allocate_fat_tree_flows(tree, flows)
        assert np.allclose(alloc.rates_Bps, bw, rtol=1e-6)

    def test_oversubscribed_tree_halves_adversarial_flows(self):
        tree = FatTree(n_nodes=72, switch_radix=36, oversubscription=2.0)
        bw = tree.link.bandwidth_Bps
        flows = permutation_traffic(72, bw, shift=tree.shape.hosts_per_leaf)
        alloc = allocate_fat_tree_flows(tree, flows)
        # Two wire-rate flows share each uplink -> everyone gets half.
        assert alloc.min_rate_Bps == pytest.approx(bw / 2, rel=1e-6)
        assert len(alloc.bottleneck_links) > 0

    def test_intra_leaf_flows_unaffected_by_uplink_congestion(self):
        tree = FatTree(n_nodes=72, switch_radix=36, oversubscription=2.0)
        bw = tree.link.bandwidth_Bps
        flows = permutation_traffic(72, bw, shift=tree.shape.hosts_per_leaf)
        flows.append((0, 1, bw))  # same-leaf neighbours
        alloc = allocate_fat_tree_flows(tree, flows)
        # Hmm: host 0 and 1 already send/receive permutation traffic, so
        # their host links are shared; the flow still beats the uplink share.
        assert alloc.rates_Bps[-1] >= bw / 2 - 1e-6

    def test_completion_time(self):
        tree = FatTree(n_nodes=8, switch_radix=36)
        bw = tree.link.bandwidth_Bps
        flows = [(0, 1, bw), (2, 3, bw)]
        alloc = allocate_fat_tree_flows(tree, flows)
        t = completion_time_s([bw, 2 * bw], alloc)
        assert t == pytest.approx(2.0)

    def test_completion_time_validation(self):
        tree = FatTree(n_nodes=4, switch_radix=36)
        alloc = allocate_fat_tree_flows(tree, [(0, 1, 1.0)])
        with pytest.raises(ValueError):
            completion_time_s([1.0, 2.0], alloc)
        with pytest.raises(ValueError):
            completion_time_s([-1.0], alloc)

    def test_flow_demand_validation(self):
        tree = FatTree(n_nodes=4, switch_radix=36)
        with pytest.raises(ValueError):
            allocate_fat_tree_flows(tree, [(0, 1, 0.0)])
