"""Tests for the phase-II ARM prototype and the Unified Memory model."""

import numpy as np
import pytest

from repro.apps import UnifiedMemoryModel
from repro.hardware import (
    ARM_SOC,
    PHASE2_NODE,
    ComputeNode,
    CpuModel,
    arm_pstates,
    phase2_fabric,
)


class TestArmPrototype:
    def test_arm_cpu_model_works_on_arm_spec(self):
        cpu = CpuModel(ARM_SOC, pstates=arm_pstates())
        assert cpu.power_w(1.0) == pytest.approx(ARM_SOC.tdp_w)
        assert cpu.power_w(0.0) == pytest.approx(ARM_SOC.idle_w)
        # 48 cores x 2 flops x 2 GHz = 192 GFlops.
        assert cpu.peak_flops() == pytest.approx(192e9)

    def test_arm_pstate_ladder(self):
        ladder = arm_pstates()
        assert len(ladder) == 4
        freqs = [p.frequency_hz for p in ladder]
        assert freqs == sorted(freqs, reverse=True)

    def test_phase2_node_envelope(self):
        node = ComputeNode(spec=PHASE2_NODE)
        # 2 GPUs + 1 ARM SoC ~= 10.8 TFlops nameplate.
        assert node.nameplate_flops == pytest.approx(10.8e12, rel=0.02)
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        assert node.power_w() == pytest.approx(900.0, rel=0.15)

    def test_phase2_fabric_is_pcie_only(self):
        fabric = phase2_fabric()
        cost = fabric.transfer("cpu0", "gpu0", 1.0)
        assert cost.bandwidth_Bps == pytest.approx(15.75e9)
        assert all(d["medium"] != "nvlink" for _, _, d in fabric.graph.edges(data=True))
        # GPU peers also ride PCIe (through the root complex in reality;
        # bandwidth-equivalent here).
        assert fabric.gpu_peer_bandwidth_Bps(0, 1) == pytest.approx(15.75e9)

    def test_phase3_beats_phase2_on_cpu_gpu_bandwidth(self):
        phase2 = phase2_fabric().transfer("cpu0", "gpu0", 1.0).bandwidth_Bps
        phase3 = ComputeNode().fabric.transfer("cpu0", "gpu0", 1.0).bandwidth_Bps
        assert phase3 / phase2 > 2.0  # 40 vs 15.75 GB/s

    def test_phase3_node_denser_but_phase2_efficient_at_low_power(self):
        p2 = ComputeNode(spec=PHASE2_NODE)
        p3 = ComputeNode()
        p2.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        p3.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        # Phase III has ~2x the peak per node...
        assert p3.nameplate_flops > p2.nameplate_flops * 1.8
        # ...at comparable nameplate efficiency (both GPU-dominated).
        eff2 = p2.nameplate_flops / p2.power_w()
        eff3 = p3.nameplate_flops / p3.power_w()
        assert eff3 == pytest.approx(eff2, rel=0.25)


class TestUnifiedMemory:
    def test_resident_workload_runs_at_hbm_speed(self):
        um = UnifiedMemoryModel.nvlink()
        point = um.point(8 * 1024**3)  # half of HBM
        assert point.oversubscription == pytest.approx(0.5)
        assert point.slowdown == pytest.approx(1.0)
        assert point.effective_bandwidth_Bps == pytest.approx(732e9)

    def test_oversubscription_degrades_bandwidth(self):
        um = UnifiedMemoryModel.nvlink()
        p15 = um.point(1.5 * 16 * 1024**3)
        assert p15.resident_fraction == pytest.approx(2 / 3)
        assert p15.slowdown > 5.0

    def test_nvlink_oversubscription_much_cheaper_than_pcie(self):
        ratios = [1.25, 1.5, 2.0]
        nv = UnifiedMemoryModel.nvlink().sweep(ratios)
        pc = UnifiedMemoryModel.pcie().sweep(ratios)
        for n, p in zip(nv, pc):
            assert p.slowdown > n.slowdown * 2.0

    def test_slowdown_monotone_in_oversubscription(self):
        um = UnifiedMemoryModel.nvlink()
        points = um.sweep([1.0, 1.1, 1.3, 1.6, 2.0, 4.0])
        slowdowns = [p.slowdown for p in points]
        assert all(a <= b + 1e-9 for a, b in zip(slowdowns, slowdowns[1:]))

    def test_asymptote_is_paging_bandwidth(self):
        um = UnifiedMemoryModel.nvlink()
        huge = um.point(1000 * 16 * 1024**3)
        paging = um.link_bandwidth_Bps * (1 - um.page_fault_overhead)
        assert huge.effective_bandwidth_Bps == pytest.approx(paging, rel=0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            UnifiedMemoryModel(link_gang=0)
        with pytest.raises(ValueError):
            UnifiedMemoryModel(page_fault_overhead=1.0)
        um = UnifiedMemoryModel.nvlink()
        with pytest.raises(ValueError):
            um.point(0.0)
        with pytest.raises(ValueError):
            um.sweep([0.0])
