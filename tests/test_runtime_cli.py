"""``python -m repro`` smoke tests, driven in-process via ``main()``.

The headline guarantee: ``python -m repro campaign
examples/scenarios/e07b.toml`` reproduces the hand-wired
``bench_e07_power_capping.campaign_grid()`` digest byte for byte.  The
hand-wired run seeds a content-addressed store first, so the CLI leg is
a warm replay (zero simulations) that still walks the full
load → build → run → digest path.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.runtime.cli import main
from repro.scheduler import campaign_digest, run_campaign
from repro.scheduler.cache import DirectoryResultStore

HAVE_TOMLLIB = importlib.util.find_spec("tomllib") is not None
needs_tomllib = pytest.mark.skipif(
    not HAVE_TOMLLIB, reason="stdlib tomllib needs Python >= 3.11"
)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ZOO = os.path.join(_ROOT, "examples", "scenarios")


def _bench_e07_grid():
    path = os.path.join(_ROOT, "benchmarks", "bench_e07_power_capping.py")
    spec = importlib.util.spec_from_file_location("bench_e07_cli", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_e07_cli"] = module
    spec.loader.exec_module(module)
    return module.campaign_grid()


def _write_json(tmp_path, name, data):
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return str(path)


def _small_campaign(tmp_path):
    return _write_json(tmp_path, "small.json", {
        "runtime": {"kind": "campaign", "name": "small"},
        "machine": {"n_nodes": 6},
        "workload": {"n_jobs": 12, "seed": 3, "load_factor": 1.1},
        "campaign": {
            "seeds": [0],
            "cells": [
                {"label": "easy"},
                {"label": "easy capped", "cap_w": 7000.0},
            ],
            "core": "array",
        },
        "policy": {"name": "easy"},
    })


@needs_tomllib
class TestCampaignDigestReproduction:
    def test_e07b_toml_reproduces_the_bench_digest(self, tmp_path, capsys):
        """ISSUE acceptance: the zoo TOML drives the CLI end-to-end and
        lands on the hand-wired campaign digest."""
        config, grid = _bench_e07_grid()
        store = DirectoryResultStore(tmp_path / "store")
        expected = campaign_digest(run_campaign(config, grid, cache=store))

        exit_code = main([
            "campaign", os.path.join(ZOO, "e07b.toml"),
            "--cache", str(tmp_path / "store"),
            "--check", expected, "--quiet",
        ])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert expected in out
        assert "digest check: ok" in out
        # warm replay: the CLI leg simulated nothing new
        assert len(store) == len(grid)

    def test_digest_mismatch_exits_nonzero(self, tmp_path, capsys):
        exit_code = main([
            "campaign", _small_campaign(tmp_path),
            "--check", "0" * 64, "--quiet",
        ])
        assert exit_code == 1
        assert "MISMATCH" in capsys.readouterr().err


class TestCampaignCommand:
    def test_out_artifact_carries_keys_and_digest(self, tmp_path, capsys):
        from repro.runtime import build
        from repro.scheduler.cache import scenario_key

        path = _small_campaign(tmp_path)
        out = tmp_path / "artifact.json"
        assert main(["campaign", path, "--quiet", "--processes", "1",
                     "--out", str(out)]) == 0
        artifact = json.loads(out.read_text())
        plan = build(path)
        assert artifact["config_key"] == plan.config_key()
        assert [c["scenario_key"] for c in artifact["cells"]] == [
            scenario_key(plan.config, s) for s in plan.grid]
        assert artifact["campaign_digest"] in capsys.readouterr().out

    def test_checkpoint_flag_records_cells(self, tmp_path):
        path = _small_campaign(tmp_path)
        ckpt = tmp_path / "ckpt"
        assert main(["campaign", path, "--quiet",
                     "--checkpoint", str(ckpt)]) == 0
        # a second run replays entirely from the checkpoint
        from repro.scheduler.cache import CampaignCheckpoint

        assert len(CampaignCheckpoint(ckpt)) == 2

    def test_progress_lines_name_each_cell(self, tmp_path, capsys):
        assert main(["campaign", _small_campaign(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "easy capped" in captured.err  # progress on stderr
        assert "easy capped" in captured.out  # QoS table on stdout

    def test_wrong_kind_is_rejected(self, tmp_path, capsys):
        path = _write_json(tmp_path, "live.json", {
            "runtime": {"kind": "live"},
            "machine": {"n_nodes": 2},
        })
        assert main(["campaign", path]) == 2
        assert "kind='live'" in capsys.readouterr().err


class TestRunCommand:
    def test_runs_a_live_config(self, tmp_path, capsys):
        path = _write_json(tmp_path, "live.json", {
            "runtime": {"kind": "live", "name": "smoke"},
            "machine": {"n_nodes": 2},
            "cap": {"cap_w": 1500.0},
            "live": {"until_s": 0.5},
        })
        assert main(["run", path]) == 0
        out = capsys.readouterr().out
        assert "ran smoke for 0.5 s" in out
        assert "fleet power" in out

    def test_until_flag_overrides_config(self, tmp_path, capsys):
        path = _write_json(tmp_path, "live.json", {
            "runtime": {"kind": "live"},
            "machine": {"n_nodes": 2},
        })
        assert main(["run", path, "--until", "0.25"]) == 0
        assert "for 0.25 s" in capsys.readouterr().out


class TestExploreCommand:
    def _config(self, tmp_path):
        return _write_json(tmp_path, "search.json", {
            "runtime": {"kind": "exploration", "name": "mini"},
            "machine": {"n_nodes": 4},
            "workload": {"n_jobs": 8, "seed": 3, "load_factor": 1.1},
            "exploration": {
                "searcher": "random", "budget": 3, "seed": 2,
                "space": {"cap_w": {"type": "continuous",
                                    "lo": 3e3, "hi": 6e3}},
                "objective": {"metrics": ["total_energy_j"]},
                "base": {"policy": "easy"},
            },
        })

    def test_trace_artifact_and_check(self, tmp_path, capsys):
        path = self._config(tmp_path)
        out = tmp_path / "trace.json"
        assert main(["explore", path, "--quiet", "--out", str(out),
                     "--cache", str(tmp_path / "store")]) == 0
        trace = json.loads(out.read_text())
        assert len(trace["steps"]) == 3
        # warm rerun against the same store replays and digest-checks
        assert main(["explore", path, "--quiet",
                     "--cache", str(tmp_path / "store"),
                     "--check", trace["digest"]]) == 0
        assert "digest check: ok" in capsys.readouterr().out

    def test_reports_best_point(self, tmp_path, capsys):
        assert main(["explore", self._config(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "best point" in out and "cap_w=" in out


class TestReportCommand:
    @needs_tomllib
    def test_all_zoo_files_validate(self, capsys):
        files = sorted(
            os.path.join(ZOO, f)
            for f in os.listdir(ZOO) if f.endswith(".toml"))
        assert main(["report", *files]) == 0
        out = capsys.readouterr().out
        assert out.count("kind=") == len(files)

    def test_report_describes_json_configs(self, tmp_path, capsys):
        assert main(["report", _small_campaign(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "kind=campaign" in out and "config_key" in out

    def test_dump_output_reloads_identically(self, tmp_path, capsys):
        from repro.runtime import load, loads

        path = _small_campaign(tmp_path)
        assert main(["report", "--dump", "json", path]) == 0
        text = capsys.readouterr().out
        assert loads(text, "json") == load(path)

    def test_config_errors_exit_2(self, tmp_path, capsys):
        path = _write_json(tmp_path, "bad.json", {
            "runtime": {"kind": "campaign"},
            "machine": {"n_nodes": 8, "n_node": 1},
            "campaign": {"cells": [{}]},
        })
        assert main(["report", path]) == 2
        err = capsys.readouterr().err
        assert "n_node" in err and "n_nodes" in err

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["report", str(tmp_path / "ghost.toml")]) == 2
        assert "ghost.toml" in capsys.readouterr().err
