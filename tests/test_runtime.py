"""The config-driven runtime: models, loader, build, dump.

The load-bearing guarantees:

* every scenario-zoo file under ``examples/scenarios/`` loads, builds,
  and the campaign ones compile to **exactly** the grids the bench
  ``campaign_grid()`` helpers hand-wire (same ``CampaignConfig``, same
  ``Scenario`` cells in the same order — digest identity follows);
* ``load → dump → load`` is a fixed point in both formats;
* unknown sections/keys fail through the shared kwargs error path,
  naming every misspelling and the known fields;
* component names route through the registries, so typos fail listing
  what *is* registered.
"""

import importlib.util
import json
import os
import sys

import pytest

from repro.cluster import LiveCluster
from repro.runtime import (
    CampaignPlan,
    ConfigError,
    ExplorationPlan,
    RuntimeConfig,
    build,
    dump,
    load,
    loads,
)
from repro.scheduler import CampaignConfig, NodeOutage

HAVE_TOMLLIB = importlib.util.find_spec("tomllib") is not None
needs_tomllib = pytest.mark.skipif(
    not HAVE_TOMLLIB, reason="stdlib tomllib needs Python >= 3.11"
)

_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
ZOO = os.path.join(_ROOT, "examples", "scenarios")
ZOO_FILES = sorted(
    os.path.join(ZOO, f) for f in os.listdir(ZOO) if f.endswith(".toml")
)


def _bench(name):
    path = os.path.join(_ROOT, "benchmarks", f"{name}.py")
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def _json_config(**overrides):
    """A small valid campaign config as a plain dict (JSON spelling)."""
    data = {
        "runtime": {"kind": "campaign"},
        "machine": {"n_nodes": 8},
        "workload": {"n_jobs": 20, "seed": 5},
        "campaign": {
            "seeds": [0, 1],
            "cells": [
                {"label": "base", "policy": "easy"},
                {"label": "capped", "policy": "easy", "cap_w": 9000.0},
            ],
        },
    }
    data.update(overrides)
    return data


class TestZoo:
    """Every checked-in scenario file must stay loadable and buildable."""

    @needs_tomllib
    @pytest.mark.parametrize(
        "path", ZOO_FILES, ids=[os.path.basename(p) for p in ZOO_FILES])
    def test_loads_and_builds(self, path):
        cfg = load(path)
        artifact = build(cfg)
        expected = {
            "campaign": CampaignPlan,
            "exploration": ExplorationPlan,
            "live": LiveCluster,
        }[cfg.runtime.kind]
        assert isinstance(artifact, expected)

    @needs_tomllib
    @pytest.mark.parametrize(
        "path", ZOO_FILES, ids=[os.path.basename(p) for p in ZOO_FILES])
    def test_round_trip_is_a_fixed_point(self, path):
        cfg = load(path)
        assert loads(dump(cfg, "toml"), "toml") == cfg
        assert loads(dump(cfg, "json"), "json") == cfg

    @needs_tomllib
    @pytest.mark.parametrize("bench,zoo", [
        ("bench_e07_power_capping", "e07b.toml"),
        ("bench_e08_power_prediction", "e08a.toml"),
        ("bench_e09_fig4_pipeline", "e09a.toml"),
    ])
    def test_grid_matches_hand_wired_bench(self, bench, zoo):
        """Cell-for-cell equality with ``campaign_grid()`` — the digest
        identity of the config-driven run follows for free, because
        equal (config, grid) pairs share every scenario key."""
        bench_config, bench_grid = _bench(bench).campaign_grid()
        plan = build(os.path.join(ZOO, zoo))
        assert plan.config == bench_config
        assert list(plan.grid) == bench_grid

    @needs_tomllib
    def test_exploration_matches_hand_wired_explore(self, tmp_path):
        """The explore_cap zoo file walks the same seeded trajectory as
        the equivalent hand-wired explore() call (shared cache, so the
        second walk replays instead of re-simulating)."""
        from repro import explore
        from repro.explore import Categorical, Continuous, DesignSpace, Objective
        from repro.scheduler.cache import DirectoryResultStore

        store = DirectoryResultStore(tmp_path)
        hand = explore(
            DesignSpace({"cap_w": Continuous(10e3, 20e3),
                         "policy": Categorical(("easy", "power-aware"))}),
            Objective.blend({"total_energy_j": 1.0, "p95_wait_s": 5e4},
                            name="energy+wait"),
            searcher="random", budget=6, seed=1,
            config=CampaignConfig(n_nodes=12, n_jobs=60, root_seed=2026,
                                  load_factor=1.1),
            cache=store,
        )
        plan = build(os.path.join(ZOO, "explore_cap.toml"))
        trace = plan.run(cache=DirectoryResultStore(tmp_path))
        assert trace.n_cache_hits == len(trace.steps)  # pure replay
        assert trace.digest() == hand.digest()


class TestLoader:
    def test_json_spelling_works_without_tomllib(self):
        cfg = loads(json.dumps(_json_config()), fmt="json")
        plan = build(cfg)
        assert isinstance(plan, CampaignPlan)
        assert len(plan.grid) == 4  # 2 cells x 2 seeds

    def test_unknown_format_rejected(self):
        with pytest.raises(ConfigError, match="yaml"):
            loads("{}", fmt="yaml")

    def test_invalid_json_is_a_config_error(self):
        with pytest.raises(ConfigError, match="invalid JSON"):
            loads("{nope", fmt="json")

    @needs_tomllib
    def test_invalid_toml_is_a_config_error(self):
        with pytest.raises(ConfigError, match="invalid TOML"):
            loads("[runtime\nkind=", fmt="toml")

    def test_missing_file_names_the_path(self, tmp_path):
        with pytest.raises(ConfigError, match="nope.json"):
            load(tmp_path / "nope.json")

    def test_load_error_names_the_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(_json_config(machine={"n_nodes": 0})))
        with pytest.raises(ConfigError, match=r"bad\.json.*n_nodes"):
            load(path)


class TestValidation:
    """Strict names everywhere, through the shared kwargs error path."""

    def test_unknown_section_names_the_known_ones(self):
        data = _json_config()
        data["machina"] = {}
        with pytest.raises(TypeError, match=r"'machina'.*machine"):
            RuntimeConfig.from_dict(data)

    def test_all_unknown_keys_reported_sorted_with_known_fields(self):
        data = _json_config(
            machine={"n_nodes": 8, "n_node": 1, "idle_w": 2})
        with pytest.raises(
                TypeError,
                match=r"'idle_w', 'n_node'.*\(known:.*n_nodes"):
            RuntimeConfig.from_dict(data)

    def test_unknown_cell_key_names_the_cell(self):
        data = _json_config()
        data["campaign"]["cells"][1]["cap"] = 1.0
        with pytest.raises(TypeError, match=r"campaign\.cells\[1\].*'cap'"):
            RuntimeConfig.from_dict(data)

    def test_unknown_policy_lists_registered(self):
        data = _json_config(policy={"name": "sjf"})
        with pytest.raises(ConfigError,
                           match=r"'sjf'.*registered:.*'power-aware'"):
            RuntimeConfig.from_dict(data)

    def test_unknown_workload_generator_lists_registered(self):
        data = _json_config(workload={"generator": "ligen"})
        with pytest.raises(ConfigError, match=r"'ligen'.*registered:.*'qe'"):
            RuntimeConfig.from_dict(data)

    def test_unknown_searcher_lists_registered(self):
        data = {
            "runtime": {"kind": "exploration"},
            "machine": {"n_nodes": 4},
            "exploration": {
                "searcher": "bayes",
                "space": {"cap_w": {"type": "continuous",
                                    "lo": 1e3, "hi": 2e3}},
                "objective": {"metrics": ["total_energy_j"]},
                "base": {"policy": "easy"},
            },
        }
        with pytest.raises(ConfigError,
                           match=r"'bayes'.*registered:.*'evolutionary'"):
            RuntimeConfig.from_dict(data)

    def test_kind_must_match_sections(self):
        data = _json_config()
        data["runtime"]["kind"] = "live"
        with pytest.raises(ConfigError, match=r"\[campaign\] is only valid"):
            RuntimeConfig.from_dict(data)
        data = _json_config()
        del data["campaign"]
        with pytest.raises(ConfigError, match=r"needs a \[campaign\]"):
            RuntimeConfig.from_dict(data)

    def test_unknown_kind_rejected(self):
        data = _json_config()
        data["runtime"]["kind"] = "bench"
        with pytest.raises(ConfigError, match="'bench'"):
            RuntimeConfig.from_dict(data)

    def test_type_errors_name_the_key(self):
        data = _json_config(machine={"n_nodes": "many"})
        with pytest.raises(ConfigError,
                           match="machine.n_nodes must be an integer"):
            RuntimeConfig.from_dict(data)

    def test_bool_is_not_an_integer(self):
        data = _json_config(machine={"n_nodes": True})
        with pytest.raises(ConfigError, match="must be an integer"):
            RuntimeConfig.from_dict(data)

    def test_bad_cell_scenario_is_located(self):
        # power-aware with no envelope anywhere fails Scenario
        # validation; the error must say which cell.
        data = _json_config(policy={"name": "power-aware"})
        data["campaign"]["cells"] = [{"label": "naked"}]
        with pytest.raises(ConfigError,
                           match=r"campaign\.cells\[0\].*'naked'"):
            build(RuntimeConfig.from_dict(data))

    def test_exploration_needs_a_policy_somewhere(self):
        data = {
            "runtime": {"kind": "exploration"},
            "machine": {"n_nodes": 4},
            "exploration": {
                "space": {"cap_w": {"type": "continuous",
                                    "lo": 1e3, "hi": 2e3}},
                "objective": {"metrics": ["total_energy_j"]},
            },
        }
        with pytest.raises(ConfigError, match="policy"):
            RuntimeConfig.from_dict(data)

    def test_unknown_objective_metric_lists_known(self):
        data = {
            "runtime": {"kind": "exploration"},
            "machine": {"n_nodes": 4},
            "exploration": {
                "space": {"policy": {"type": "categorical",
                                     "choices": ["easy"]}},
                "objective": {"metrics": ["joules"]},
            },
        }
        with pytest.raises(ConfigError, match=r"'joules'.*total_energy_j"):
            RuntimeConfig.from_dict(data)

    def test_campaign_requires_the_davide_mix(self):
        data = _json_config(
            workload={"generator": "qe", "n_jobs": 20, "seed": 5})
        with pytest.raises(ConfigError, match="davide"):
            build(RuntimeConfig.from_dict(data))


class TestBuildSemantics:
    def test_cells_inherit_from_shared_sections(self):
        data = _json_config(
            policy={"name": "power-aware", "predictor": "nameplate",
                    "train_fraction": 0.0},
            cap={"cap_w": 9e3, "budget_w": 8e3},
        )
        data["campaign"]["cells"] = [
            {"label": "inherits"},
            {"label": "overrides", "cap_w": 7e3, "predictor": "oracle"},
        ]
        plan = build(RuntimeConfig.from_dict(data))
        inherits, overrides = plan.grid[0], plan.grid[1]
        assert inherits.policy == "power-aware"
        assert inherits.cap_w == 9e3 and inherits.budget_w == 8e3
        assert inherits.predictor == "nameplate"
        assert overrides.cap_w == 7e3 and overrides.budget_w == 8e3
        assert overrides.predictor == "oracle"

    def test_grid_is_seed_outer_cell_inner(self):
        plan = build(RuntimeConfig.from_dict(_json_config()))
        order = [(s.seed_index, s.label) for s in plan.grid]
        assert order == [(0, "base"), (0, "capped"),
                         (1, "base"), (1, "capped")]

    def test_shared_outages_thread_into_every_cell(self):
        data = _json_config()
        data["outage"] = [
            {"at_s": 100.0, "node_id": 2, "duration_s": 50.0}]
        data["campaign"]["cells"][1]["outages"] = [
            {"at_s": 5.0, "node_id": 0, "duration_s": 1.0}]
        plan = build(RuntimeConfig.from_dict(data))
        assert plan.grid[0].node_outages == (
            NodeOutage(at_s=100.0, node_id=2, duration_s=50.0),)
        # a cell's own outage list overrides the shared one
        assert plan.grid[1].node_outages == (
            NodeOutage(at_s=5.0, node_id=0, duration_s=1.0),)

    def test_campaign_config_maps_machine_and_workload(self):
        data = _json_config(
            machine={"n_nodes": 8, "min_speed": 0.5,
                     "idle_node_power_w": 250.0},
        )
        plan = build(RuntimeConfig.from_dict(data))
        assert plan.config == CampaignConfig(
            n_nodes=8, n_jobs=20, root_seed=5, load_factor=0.85,
            idle_node_power_w=250.0, min_speed=0.5)

    def test_campaign_plan_runs(self):
        from repro.scheduler import campaign_digest, run_campaign

        plan = build(RuntimeConfig.from_dict(_json_config()))
        results = plan.run(processes=1)
        hand = run_campaign(plan.config, list(plan.grid), processes=1)
        assert campaign_digest(results) == campaign_digest(hand)

    def test_live_build_wires_capping_and_observability(self):
        data = {
            "runtime": {"kind": "live"},
            "machine": {"n_nodes": 3},
            "cap": {"cap_w": 1500.0},
            "observability": {"enabled": True},
            "live": {"until_s": 1.0},
        }
        cluster = build(RuntimeConfig.from_dict(data))
        assert isinstance(cluster, LiveCluster)
        assert len(cluster.agents) == 3
        cluster.run(until=1.0)
        assert cluster.env.now == 1.0
        assert cluster.metrics().snapshot()  # observability is live

    def test_exploration_space_preserves_declaration_order(self):
        data = {
            "runtime": {"kind": "exploration"},
            "machine": {"n_nodes": 4},
            "exploration": {
                "space": {
                    "policy": {"type": "categorical",
                               "choices": ["easy", "fifo"]},
                    "backfill_depth": {"type": "integer",
                                       "lo": 1, "hi": 8},
                    "cap_w": {"type": "continuous",
                              "lo": 1e3, "hi": 2e3},
                },
                "objective": {"metrics": ["total_energy_j"]},
            },
        }
        plan = build(RuntimeConfig.from_dict(data))
        assert plan.space.names() == ("policy", "backfill_depth", "cap_w")
        assert plan.objective.sense == "min"


class TestDump:
    def test_dump_accepts_plans(self):
        cfg = RuntimeConfig.from_dict(_json_config())
        assert dump(build(cfg), "json") == dump(cfg, "json")

    def test_dump_rejects_other_objects(self):
        with pytest.raises(TypeError, match="RuntimeConfig"):
            dump({"runtime": {"kind": "campaign"}})

    def test_json_dump_round_trips_without_tomllib(self):
        cfg = RuntimeConfig.from_dict(_json_config())
        assert loads(dump(cfg, "json"), "json") == cfg

    def test_dump_omits_null_knobs(self):
        cfg = RuntimeConfig.from_dict(_json_config())
        data = json.loads(dump(cfg, "json"))
        cell = data["campaign"]["cells"][0]
        assert "cap_w" not in cell  # None is spelled by omission
        assert data["campaign"]["cells"][1]["cap_w"] == 9000.0

    @needs_tomllib
    def test_toml_dump_of_generated_config_round_trips(self):
        data = _json_config(
            policy={"name": "easy", "backfill_depth": 4},
            cap={"cap_w": 9e3},
        )
        data["outage"] = [{"at_s": 9.0, "node_id": 1, "duration_s": 2.0}]
        cfg = RuntimeConfig.from_dict(data)
        assert loads(dump(cfg, "toml"), "toml") == cfg
