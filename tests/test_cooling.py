"""Tests for thermal chains, liquid loop, throttling and hybrid accounting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cooling import (
    AIR_COOLED_GPU,
    LIQUID_COOLED_GPU,
    CoolantStream,
    DatacenterCooling,
    HeatExchanger,
    HeatSplit,
    LiquidLoop,
    ThermalChain,
    ThermalStage,
    ThrottleGovernor,
    dew_point_c,
    heat_split_for_node,
    heat_split_for_rack,
    sustained_performance,
)
from repro.hardware import ComputeNode, Rack


class TestThermalChain:
    def test_requires_stages(self):
        with pytest.raises(ValueError):
            ThermalChain([])
        with pytest.raises(ValueError):
            ThermalStage("x", resistance_k_per_w=0.0, capacitance_j_per_k=1.0)

    def test_steady_state_equals_boundary_plus_ir_drop(self):
        chain = ThermalChain(
            [ThermalStage("die", 0.1, 50.0), ThermalStage("sink", 0.2, 500.0)],
            boundary_temp_c=30.0,
        )
        # Die steady T = 30 + P*(0.1+0.2).
        assert chain.steady_die_temp_c(100.0) == pytest.approx(60.0)

    def test_transient_converges_to_steady_state(self):
        chain = LIQUID_COOLED_GPU(35.0)
        steady = chain.steady_die_temp_c(300.0)
        series = chain.run(300.0, duration_s=3000.0, dt_s=5.0)
        assert series[-1] == pytest.approx(steady, abs=0.1)

    def test_transient_monotone_rise_from_cold(self):
        chain = LIQUID_COOLED_GPU(35.0)
        series = chain.run(300.0, duration_s=200.0, dt_s=1.0)
        assert np.all(np.diff(series) >= -1e-9)

    def test_zero_power_stays_at_boundary(self):
        chain = LIQUID_COOLED_GPU(40.0)
        series = chain.run(0.0, duration_s=100.0, dt_s=10.0)
        assert np.allclose(series, 40.0, atol=1e-6)

    def test_liquid_keeps_p100_cooler_than_air(self):
        liquid = LIQUID_COOLED_GPU(35.0).steady_die_temp_c(300.0)
        air = AIR_COOLED_GPU(28.0).steady_die_temp_c(300.0)
        # Even with 35 degC water vs 28 degC air, the cold plate wins.
        assert liquid < air

    def test_hot_water_45c_keeps_die_safe(self):
        # Paper: liquid up to 45 degC must still be a safe operating point.
        die = LIQUID_COOLED_GPU(45.0).steady_die_temp_c(300.0)
        assert die < 83.0  # below the throttle threshold

    def test_boundary_change_and_reset(self):
        chain = LIQUID_COOLED_GPU(35.0)
        chain.set_boundary(45.0)
        chain.reset()
        assert chain.die_temp_c == 45.0

    def test_validation(self):
        chain = LIQUID_COOLED_GPU()
        with pytest.raises(ValueError):
            chain.step(100.0, dt_s=0.0)
        with pytest.raises(ValueError):
            chain.step(-1.0, dt_s=1.0)
        with pytest.raises(ValueError):
            chain.steady_state_c(-5.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=10.0, max_value=300.0), st.floats(min_value=20.0, max_value=45.0))
    def test_steady_die_always_above_boundary(self, power, boundary):
        chain = LIQUID_COOLED_GPU(boundary)
        assert chain.steady_die_temp_c(power) > boundary


class TestCoolantAndDewPoint:
    def test_stream_outlet_temperature_rise(self):
        # 30 L/min at 35 degC absorbing 30 kW (one rack).
        s = CoolantStream(flow_lpm=30.0, inlet_temp_c=35.0)
        rise = s.outlet_temp_c(30e3) - 35.0
        # dT = 30000 / (0.496 kg/s * 4186) ~= 14.5 K.
        assert rise == pytest.approx(14.5, abs=0.5)

    def test_flow_validation(self):
        with pytest.raises(ValueError):
            CoolantStream(flow_lpm=0.0, inlet_temp_c=35.0)

    def test_dew_point_monotone_in_humidity(self):
        assert dew_point_c(25.0, 0.8) > dew_point_c(25.0, 0.4)
        assert dew_point_c(25.0, 1.0) == pytest.approx(25.0, abs=0.1)

    def test_dew_point_validation(self):
        with pytest.raises(ValueError):
            dew_point_c(25.0, 0.0)


class TestHeatExchanger:
    def test_effectiveness_bounds(self):
        hx = HeatExchanger(ua_w_per_k=3000.0)
        hot = CoolantStream(30.0, 45.0)
        cold = CoolantStream(30.0, 35.0)
        assert 0.0 < hx.effectiveness(hot, cold) < 1.0

    def test_heat_flows_hot_to_cold_only(self):
        hx = HeatExchanger(ua_w_per_k=3000.0)
        result = hx.transfer(CoolantStream(30.0, 30.0), CoolantStream(30.0, 40.0))
        assert result["heat_w"] == 0.0

    def test_energy_balance(self):
        hx = HeatExchanger(ua_w_per_k=3000.0)
        hot = CoolantStream(30.0, 50.0)
        cold = CoolantStream(30.0, 35.0)
        r = hx.transfer(hot, cold)
        q_hot = hot.heat_capacity_rate_w_per_k * (hot.inlet_temp_c - r["hot_outlet_c"])
        q_cold = cold.heat_capacity_rate_w_per_k * (r["cold_outlet_c"] - cold.inlet_temp_c)
        assert q_hot == pytest.approx(r["heat_w"], rel=1e-9)
        assert q_cold == pytest.approx(r["heat_w"], rel=1e-9)

    def test_larger_ua_transfers_more(self):
        hot = CoolantStream(30.0, 50.0)
        cold = CoolantStream(30.0, 35.0)
        small = HeatExchanger(500.0).transfer(hot, cold)["heat_w"]
        big = HeatExchanger(5000.0).transfer(hot, cold)["heat_w"]
        assert big > small

    def test_validation(self):
        with pytest.raises(ValueError):
            HeatExchanger(0.0)


class TestLiquidLoop:
    def loop(self):
        return LiquidLoop(HeatExchanger(ua_w_per_k=4000.0))

    def test_operating_point_converges(self):
        op = self.loop().operating_point(heat_w=22e3, facility_inlet_c=35.0)
        assert abs(op["residual_w"]) < 22e3 * 0.01
        assert op["secondary_return_c"] > op["secondary_supply_c"] > 35.0

    def test_facility_inlet_range_enforced(self):
        loop = self.loop()
        with pytest.raises(ValueError):
            loop.operating_point(1e3, facility_inlet_c=1.0)
        with pytest.raises(ValueError):
            loop.operating_point(1e3, facility_inlet_c=46.0)
        with pytest.raises(ValueError):
            loop.operating_point(-1.0, facility_inlet_c=35.0)

    def test_rack_heat_at_35c_meets_constraints(self):
        # The design point: ~22 kW liquid heat, 35 degC facility water.
        loop = self.loop()
        op = loop.operating_point(heat_w=22e3, facility_inlet_c=35.0)
        assert loop.check_constraints(op) == []

    def test_cold_water_violates_dew_point(self):
        loop = self.loop()
        op = loop.operating_point(heat_w=500.0, facility_inlet_c=5.0)
        violations = loop.check_constraints(op, room_temp_c=25.0, relative_humidity=0.8)
        assert any("dew point" in v for v in violations)

    def test_overload_violates_secondary_max(self):
        loop = self.loop()
        op = loop.operating_point(heat_w=60e3, facility_inlet_c=42.0)
        assert any("above 45.0 degC" in v for v in loop.check_constraints(op))


class TestThrottling:
    def test_liquid_cooling_never_throttles_at_45c(self):
        gov = ThrottleGovernor()
        result = gov.run(LIQUID_COOLED_GPU(45.0), demand_power_w=300.0, duration_s=1200.0)
        assert result.throttled_fraction == 0.0
        assert result.mean_performance_fraction == pytest.approx(1.0)

    def test_air_cooling_throttles_in_warm_room(self):
        gov = ThrottleGovernor()
        result = gov.run(AIR_COOLED_GPU(38.0), demand_power_w=300.0, duration_s=2400.0)
        assert result.throttled_fraction > 0.1
        assert result.mean_performance_fraction < 1.0

    def test_throttle_keeps_die_near_threshold(self):
        gov = ThrottleGovernor(throttle_temp_c=83.0)
        result = gov.run(AIR_COOLED_GPU(40.0), demand_power_w=300.0, duration_s=2400.0)
        assert result.max_die_temp_c < 95.0  # overshoot bounded

    def test_sweep_shows_air_degradation_liquid_flat(self):
        temps = [30.0, 36.0, 42.0]
        liquid = sustained_performance(LIQUID_COOLED_GPU, 300.0, temps, duration_s=900.0)
        air = sustained_performance(AIR_COOLED_GPU, 300.0, temps, duration_s=900.0)
        assert all(r.mean_performance_fraction == pytest.approx(1.0) for r in liquid)
        assert air[-1].mean_performance_fraction < air[0].mean_performance_fraction + 1e-9
        assert air[-1].mean_performance_fraction < 1.0

    def test_governor_validation(self):
        with pytest.raises(ValueError):
            ThrottleGovernor(throttle_temp_c=80.0, release_temp_c=85.0)
        with pytest.raises(ValueError):
            ThrottleGovernor(step_fraction=0.0)
        gov = ThrottleGovernor()
        with pytest.raises(ValueError):
            gov.run(LIQUID_COOLED_GPU(), demand_power_w=0.0, duration_s=10.0)


class TestHybridSplit:
    def test_node_split_in_paper_band(self):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        split = heat_split_for_node(node)
        assert 0.70 <= split.liquid_fraction <= 0.85

    def test_rack_split_in_paper_band(self):
        rack = Rack()
        for n in rack.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        split = heat_split_for_rack(rack)
        # Paper claims 75-80% liquid at system level; PSU losses and fans
        # push the air share up slightly at the rack wall.
        assert 0.70 <= split.liquid_fraction <= 0.82

    def test_idle_node_split_lower(self):
        node = ComputeNode()
        busy = ComputeNode()
        busy.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        assert heat_split_for_node(node).liquid_fraction < heat_split_for_node(busy).liquid_fraction

    def test_heat_split_totals(self):
        s = HeatSplit(liquid_w=75.0, air_w=25.0)
        assert s.total_w == 100.0
        assert s.liquid_fraction == 0.75
        assert HeatSplit(0.0, 0.0).liquid_fraction == 0.0


class TestDatacenterCooling:
    def test_free_cooling_when_outdoors_cold(self):
        dc = DatacenterCooling(liquid_supply_c=35.0)
        split = HeatSplit(liquid_w=75e3, air_w=25e3)
        cold = dc.cooling_power_w(split, outdoor_c=10.0)
        hot = dc.cooling_power_w(split, outdoor_c=35.0)
        assert cold["total_w"] < hot["total_w"]

    def test_hot_water_widens_free_cooling_window(self):
        rng = np.random.default_rng(0)
        year = rng.normal(14.0, 8.0, 8760)  # temperate climate hourly temps
        cold_water = DatacenterCooling(liquid_supply_c=18.0)
        hot_water = DatacenterCooling(liquid_supply_c=40.0)
        assert (
            hot_water.free_cooling_hours_fraction(year)["liquid"]
            > cold_water.free_cooling_hours_fraction(year)["liquid"]
        )

    def test_pue_above_one_and_reasonable(self):
        dc = DatacenterCooling()
        split = HeatSplit(liquid_w=75e3, air_w=25e3)
        pue = dc.pue(100e3, split, outdoor_c=15.0)
        assert 1.0 < pue < 1.2

    def test_validation(self):
        dc = DatacenterCooling()
        with pytest.raises(ValueError):
            dc.pue(0.0, HeatSplit(1.0, 1.0), 10.0)
        with pytest.raises(ValueError):
            dc.free_cooling_hours_fraction(np.array([]))
        with pytest.raises(ValueError):
            dc.cooling_power_w(HeatSplit(-1.0, 0.0), 10.0)
