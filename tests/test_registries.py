"""Name-addressable construction: the policy/workload/searcher registries."""

import numpy as np
import pytest

from repro.scheduler import (
    CampaignConfig,
    EasyBackfillScheduler,
    EnergyFairShareScheduler,
    FifoScheduler,
    PowerAwareScheduler,
    Registry,
    Scenario,
    make_policy,
    make_searcher,
    make_workload,
    run_campaign,
)
from repro.scheduler.registries import (
    POLICY_REGISTRY,
    SEARCHER_REGISTRY,
    WORKLOAD_REGISTRY,
)


class TestRegistry:
    def test_register_make_roundtrip(self):
        reg = Registry("widget")
        reg.register("a", lambda x=1: ("a", x))
        assert reg.make("a") == ("a", 1)
        assert reg.make("a", x=5) == ("a", 5)

    def test_decorator_form(self):
        reg = Registry("widget")

        @reg.register("b")
        def build(n=2):
            return n * 2

        assert reg.make("b", n=3) == 6
        assert build(3) == 6  # the decorator hands the factory back

    def test_unknown_name_lists_known(self):
        reg = Registry("widget")
        reg.register("only", lambda: None)
        with pytest.raises(KeyError, match=r"unknown widget 'nope'.*only"):
            reg.make("nope")

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("x", lambda: 1)
        with pytest.raises(ValueError, match="already has an entry"):
            reg.register("x", lambda: 2)

    def test_container_surface(self):
        reg = Registry("widget")
        reg.register("b", lambda: 1)
        reg.register("a", lambda: 2)
        assert "a" in reg and "missing" not in reg
        assert reg.names() == ("a", "b")
        assert list(reg) == ["a", "b"]
        assert len(reg) == 2


class TestPolicyRegistry:
    def test_builtin_names(self):
        for name in ("fifo", "easy", "power-aware", "fairshare"):
            assert name in POLICY_REGISTRY

    def test_make_policy_types(self):
        assert isinstance(make_policy("fifo"), FifoScheduler)
        assert isinstance(make_policy("easy"), EasyBackfillScheduler)
        assert isinstance(make_policy("power-aware", cap_w=20e3),
                          PowerAwareScheduler)

    def test_make_policy_forwards_kwargs(self):
        easy = make_policy("easy", backfill_depth=8)
        assert easy.backfill_depth == 8
        pa = make_policy("power-aware", cap_w=20e3, backfill_depth=3)
        assert pa.cap_w == 20e3 and pa.backfill_depth == 3

    def test_fairshare_wraps_named_inner(self):
        policy = make_policy("fairshare", inner="easy", backfill_depth=4,
                             half_life_s=3600.0)
        assert isinstance(policy, EnergyFairShareScheduler)
        assert policy.name == "fairshare+easy-backfill"
        assert policy.half_life_s == 3600.0
        assert policy.inner.backfill_depth == 4

    def test_fairshare_wraps_instance(self):
        inner = EasyBackfillScheduler()
        policy = make_policy("fairshare", inner=inner)
        assert policy.inner is inner

    def test_fairshare_instance_plus_inner_kwargs_rejected(self):
        with pytest.raises(TypeError, match="registry name"):
            make_policy("fairshare", inner=EasyBackfillScheduler(),
                        backfill_depth=4)

    def test_campaign_cells_compile_through_registry(self):
        """_build_policy resolves names via the registry, so a campaign
        accepts exactly the registered spellings."""
        config = CampaignConfig(n_nodes=4, n_jobs=8, root_seed=3,
                                load_factor=1.1)
        cells = [
            Scenario(policy="easy", backfill_depth=2),
            Scenario(policy="easy", fairshare_decay=3600.0),
        ]
        results = run_campaign(config, cells, processes=1)
        assert len(results) == 2 and all(r.digest for r in results)


class TestWorkloadRegistry:
    def test_davide_and_single_app_streams(self):
        assert "davide" in WORKLOAD_REGISTRY
        jobs = make_workload("davide", seed=7, n_jobs=40,
                             cluster_nodes=8).generate()
        assert len(jobs) == 40
        assert len({j.app for j in jobs}) > 1
        qe_only = make_workload("qe", seed=7, n_jobs=20,
                                cluster_nodes=8).generate()
        assert {j.app for j in qe_only} == {"qe"}

    def test_seed_equals_rng(self):
        a = make_workload("davide", seed=5, n_jobs=10, cluster_nodes=8)
        b = make_workload("davide", rng=np.random.default_rng(5), n_jobs=10,
                          cluster_nodes=8)
        for x, y in zip(a.generate(), b.generate()):
            assert x.submit_time_s == y.submit_time_s and x.app == y.app

    def test_seed_and_rng_together_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            make_workload("davide", seed=1, rng=np.random.default_rng(1))


class TestSearcherRegistry:
    def test_make_searcher_populates_lazily(self):
        searcher = make_searcher("evolutionary", seed=11, population=4)
        assert searcher.name == "evolutionary"
        assert searcher.seed == 11 and searcher.population == 4
        for name in ("random", "grid", "evolutionary"):
            assert name in SEARCHER_REGISTRY

    def test_unknown_searcher_lists_known(self):
        make_searcher("random")  # force registration
        with pytest.raises(KeyError, match="random"):
            make_searcher("simulated-annealing")
