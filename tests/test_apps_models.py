"""Tests for the phase-based application models and platforms."""

import numpy as np
import pytest

from repro.apps import (
    ALL_APPS,
    ApplicationModel,
    CommKind,
    Device,
    ExecutionPlatform,
    Phase,
    bqcd,
    nemo,
    quantum_espresso,
    specfem3d,
)


class TestPhase:
    def test_validation(self):
        with pytest.raises(ValueError):
            Phase(name="bad", flops=-1.0)
        with pytest.raises(ValueError):
            Phase(name="bad", comm_neighbors=-1)

    def test_arithmetic_intensity(self):
        assert Phase(name="x", flops=100.0, bytes_moved=50.0).arithmetic_intensity == 2.0
        assert Phase(name="x", flops=100.0, bytes_moved=0.0).arithmetic_intensity == float("inf")
        assert Phase(name="x").arithmetic_intensity == 0.0


class TestApplicationModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            ApplicationModel(name="x", phases=())
        with pytest.raises(ValueError):
            ApplicationModel(name="x", phases=(Phase(name="p"),), n_iterations=0)

    def test_total_flops(self):
        app = ApplicationModel(
            name="x", phases=(Phase(name="a", flops=10.0), Phase(name="b", flops=5.0)),
            n_iterations=3,
        )
        assert app.total_flops_per_node() == 45.0

    def test_factories_validate_scale(self):
        for factory in (quantum_espresso, nemo, specfem3d, bqcd):
            with pytest.raises(ValueError):
                factory(scale=0.0)

    def test_all_apps_registry(self):
        assert set(ALL_APPS) == {"qe", "nemo", "specfem", "bqcd"}


class TestExecutionPlatforms:
    @pytest.mark.parametrize("factory", [quantum_espresso, nemo, specfem3d, bqcd])
    def test_gpu_beats_cpu_for_all_apps(self, factory):
        app = factory(scale=0.5, n_iterations=5)
        cpu = ExecutionPlatform.cpu_only().run(app, n_nodes=4)
        gpu = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=4)
        assert gpu.time_to_solution_s < cpu.time_to_solution_s

    @pytest.mark.parametrize("factory", [quantum_espresso, nemo, specfem3d, bqcd])
    def test_gpu_saves_energy_for_all_apps(self, factory):
        app = factory(scale=0.5, n_iterations=5)
        cpu = ExecutionPlatform.cpu_only().run(app, n_nodes=4)
        gpu = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=4)
        assert gpu.energy_to_solution_j < cpu.energy_to_solution_j

    def test_nvlink_beats_pcie_for_qe(self):
        # The paper: FFT pair-exchange over NVLink is QE's headline win.
        app = quantum_espresso(scale=1.0, n_iterations=5)
        pcie = ExecutionPlatform.gpu_pcie().run(app, n_nodes=4)
        nvlink = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=4)
        assert nvlink.time_to_solution_s < pcie.time_to_solution_s

    def test_nvlink_beats_pcie_for_bqcd(self):
        app = bqcd(scale=1.0, n_iterations=5)
        pcie = ExecutionPlatform.gpu_pcie().run(app, n_nodes=4)
        nvlink = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=4)
        assert nvlink.time_to_solution_s < pcie.time_to_solution_s

    def test_nvlink_matters_less_for_nemo(self):
        # NEMO has no device-peer traffic: NVLink gain should be marginal.
        app = nemo(scale=1.0, n_iterations=5)
        pcie = ExecutionPlatform.gpu_pcie().run(app, n_nodes=4)
        nvlink = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=4)
        gain = pcie.time_to_solution_s / nvlink.time_to_solution_s
        assert gain < 1.05

    def test_nemo_speedup_tracks_bandwidth_ratio(self):
        # Bandwidth-bound: GPU/CPU speedup ~ aggregate HBM / socket DDR.
        app = nemo(scale=1.0, n_iterations=5)
        cpu = ExecutionPlatform.cpu_only().run(app, n_nodes=1)
        gpu = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=1)
        speedup = cpu.time_to_solution_s / gpu.time_to_solution_s
        bw_ratio = (4 * 732e9) / (2 * 115e9)  # ~12.7x
        assert speedup == pytest.approx(bw_ratio, rel=0.35)

    def test_single_node_run_has_no_network_comm(self):
        app = nemo(scale=1.0, n_iterations=5)
        report = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=1)
        halo = [t for t in report.phase_timings if t.phase.comm is CommKind.HALO]
        assert all(t.comm_s == 0.0 for t in halo)

    def test_comm_fraction_grows_with_nodes(self):
        app = bqcd(scale=1.0, n_iterations=5)
        platform = ExecutionPlatform.gpu_nvlink()
        small = platform.run(app, n_nodes=2)
        large = platform.run(app, n_nodes=32)
        assert large.comm_fraction() >= small.comm_fraction()

    def test_invalid_node_count(self):
        with pytest.raises(ValueError):
            ExecutionPlatform.gpu_nvlink().run(nemo(n_iterations=1), n_nodes=0)


class TestExecutionReport:
    def test_power_trace_structure(self):
        app = quantum_espresso(scale=0.5, n_iterations=10)
        report = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=2)
        trace = report.power_trace(iterations=3)
        assert len(trace) > 0
        assert trace.peak_power_w() < 2500.0
        assert trace.mean_power_w() > 500.0

    def test_energy_consistent_with_mean_power(self):
        app = nemo(scale=0.5, n_iterations=10)
        report = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=2)
        assert report.energy_to_solution_j == pytest.approx(
            report.mean_power_w * report.time_to_solution_s, rel=1e-9
        )

    def test_cpu_platform_sleeps_gpus_for_power(self):
        app = nemo(scale=0.5, n_iterations=5)
        cpu_report = ExecutionPlatform.cpu_only().run(app, n_nodes=1)
        # With GPUs asleep, node power must sit well below the GPU envelope.
        assert cpu_report.mean_power_w < 1100.0
