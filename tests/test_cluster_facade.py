"""The ``repro.cluster`` facade: one builder, every artifact shape."""

import numpy as np
import pytest

from repro.cluster import ClusterBuilder, LiveCluster, TelemetryPlane
from repro.hardware.specs import DAVIDE_SYSTEM
from repro.monitoring import GatewayArray, GatewayDaemon, MqttBroker
from repro.scheduler import EasyBackfillScheduler
from repro.sim import Environment


class TestTopLevelApi:
    def test_headline_imports(self):
        """The README's one-liner must work verbatim."""
        from repro import ClusterBuilder, FaultInjector, PowerTrace  # noqa: F401

    def test_top_level_reexports(self):
        import repro

        for name in ("ClusterBuilder", "LiveCluster", "TelemetryPlane",
                     "FaultDrill", "FaultInjector", "PowerTrace", "Environment"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_every_package_curates_all(self):
        import repro

        for pkg_name in ("analysis", "apps", "capping", "cluster", "cooling",
                         "core", "energyapi", "faults", "hardware", "monitoring",
                         "network", "power", "prediction", "scheduler", "sim",
                         "telemetry", "timesync"):
            pkg = getattr(repro, pkg_name)
            assert hasattr(pkg, "__all__"), f"repro.{pkg_name} has no __all__"
            for name in pkg.__all__:
                assert hasattr(pkg, name), f"repro.{pkg_name}.__all__ lists missing {name}"


class TestBuilderTerminals:
    def test_build_nodes(self):
        nodes = ClusterBuilder(n_nodes=5).build_nodes()
        assert [n.node_id for n in nodes] == [0, 1, 2, 3, 4]

    def test_build_rack_and_hardware(self):
        rack = ClusterBuilder().build_rack()
        assert len(rack.nodes) == DAVIDE_SYSTEM.rack.nodes_per_rack
        cluster = ClusterBuilder().build_hardware()
        assert cluster.n_nodes == DAVIDE_SYSTEM.n_nodes

    def test_build_simulator_maps_cap(self):
        sim = (ClusterBuilder(n_nodes=8)
               .with_scheduler(EasyBackfillScheduler(), cap_w=9_000.0)
               .build_simulator())
        assert sim.n_nodes == 8
        assert sim.cap_w == 9_000.0

    def test_build_system_uses_seed_and_spec(self):
        system = ClusterBuilder(seed=3).build_system()
        assert system.cluster.n_nodes == DAVIDE_SYSTEM.n_nodes

    def test_build_gateway(self):
        broker = MqttBroker()
        gw = ClusterBuilder(seed=1).build_gateway(7, broker=broker)
        assert gw.node_id == 7

    def test_build_drill_maps_builder_knobs(self):
        drill = (ClusterBuilder(n_nodes=12, seed=11)
                 .with_gateways(period_s=0.5, sensor_noise_w=3.0, batched=True)
                 .with_scheduler(cap_w=10_500.0)
                 .with_faults(n_jobs=6)
                 .build_drill())
        cfg = drill.config
        assert cfg.n_nodes == 12 and cfg.seed == 11
        assert cfg.gateway_period_s == 0.5 and cfg.sensor_noise_w == 3.0
        assert cfg.batched_telemetry is True
        assert cfg.power_budget_w == 10_500.0
        assert cfg.n_jobs == 6

    def test_with_faults_overrides_win(self):
        drill = (ClusterBuilder(n_nodes=4)
                 .with_scheduler(cap_w=5_000.0)
                 .with_faults(power_budget_w=3_000.0)
                 .build_drill())
        assert drill.config.power_budget_w == 3_000.0

    def test_terminals_do_not_mutate_builder(self):
        builder = ClusterBuilder(n_nodes=4).with_capping(cap_w=1_200.0)
        live_a = builder.build_live()
        live_b = builder.build_live()
        assert live_a.env is not live_b.env
        assert live_a.broker is not live_b.broker
        assert len(live_a.agents) == len(live_b.agents) == 4


class TestLiveCluster:
    def _run_live(self, batched: bool) -> LiveCluster:
        live = (ClusterBuilder(n_nodes=4, seed=5)
                .with_gateways(period_s=0.1, batched=batched)
                .with_capping(cap_w=1_500.0, actuation_delay_s=0.05)
                .build_live())
        for n in live.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        live.run(until=3.0)
        return live

    def test_caps_engage_per_sample(self):
        live = self._run_live(batched=False)
        assert live.capped_nodes == 4
        assert live.telemetry.samples_published > 0
        assert isinstance(live.telemetry.gateways[0], GatewayDaemon)

    def test_batched_matches_per_sample_outcome(self):
        """Same seed, same caps, same sample count on both hot paths."""
        per = self._run_live(batched=False)
        bat = self._run_live(batched=True)
        assert isinstance(bat.telemetry.array, GatewayArray)
        assert bat.capped_nodes == per.capped_nodes
        assert bat.telemetry.samples_published == per.telemetry.samples_published
        assert bat.total_power_w == pytest.approx(per.total_power_w)

    def test_connect_joins_the_bus(self):
        live = (ClusterBuilder(n_nodes=2)
                .with_gateways(period_s=0.1)
                .build_live())
        logbook = live.connect("logbook")
        logbook.subscribe(live.telemetry.topic_filter)
        live.run(until=1.0)
        assert len(logbook.inbox) == live.telemetry.samples_published


class TestTelemetryPlane:
    def _plane(self, batched: bool) -> tuple[Environment, MqttBroker, TelemetryPlane]:
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        nodes = ClusterBuilder(n_nodes=3).build_nodes()
        plane = TelemetryPlane(env, nodes, broker, period_s=0.1, batched=batched)
        return env, broker, plane

    def test_topic_filter_matches_mode(self):
        _, _, per = self._plane(batched=False)
        assert per.topic_filter == "davide/+/power/node"
        _, _, bat = self._plane(batched=True)
        assert bat.topic_filter == bat.array.topic == "davide/power/nodes"

    def test_attach_collector_requires_matching_handler(self):
        env, broker, plane = self._plane(batched=True)
        with pytest.raises(ValueError, match="on_batch"):
            plane.attach_collector(broker.connect("c"), on_sample=lambda m: None)
        env, broker, plane = self._plane(batched=False)
        with pytest.raises(ValueError, match="on_sample"):
            plane.attach_collector(broker.connect("c"), on_batch=lambda m: None)

    def test_aggregate_counters(self):
        env, _, plane = self._plane(batched=False)
        env.run(until=1.0)
        assert plane.samples_published == 3 * 11
        assert plane.reconnects == 0 and plane.backlog == 0

    def test_clocks_length_validated(self):
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        nodes = ClusterBuilder(n_nodes=3).build_nodes()
        with pytest.raises(ValueError, match="one clock per node"):
            TelemetryPlane(env, nodes, broker, clocks=[lambda t: t])

    def test_set_sensor_faults_per_node(self):
        env, _, plane = self._plane(batched=False)
        plane.set_sensor_faults(per_node=[lambda t, w: None, None, None])
        env.run(until=1.0)
        assert plane.samples_dropped_by_sensor == 11
        assert plane.samples_published == 2 * 11

    def test_set_sensor_faults_batch(self):
        env, _, plane = self._plane(batched=True)
        drop_node0 = lambda now, measured: (np.array([False, True, True]), measured)
        plane.set_sensor_faults(batch=drop_node0)
        env.run(until=1.0)
        assert plane.samples_dropped_by_sensor == 11
        assert plane.samples_published == 2 * 11
