"""The invariant-checking harness, unit-level and under full fault drills.

Two layers: the :class:`InvariantChecker` machinery and the built-in
invariant factories are tested against synthetic states with known-good
and known-bad ledgers; then whole :class:`FaultDrill` scenarios assert
that the cluster-wide properties actually survive each fault class
end to end.
"""

from types import SimpleNamespace

import pytest

from repro.faults import (
    DrillConfig,
    FaultDrill,
    FaultKind,
    FaultSpec,
    InvariantChecker,
    InvariantViolation,
    all_jobs_completed,
    cap_respected,
    energy_ledger_balances,
    monotonic_time_hooks,
    node_timestamps_monotonic,
    requeued_jobs_completed,
)
from repro.scheduler import JobState
from repro.sim import Environment


class TestInvariantChecker:
    def test_register_and_names(self):
        checker = InvariantChecker()
        checker.register("a", lambda s: None)
        checker.register("b", lambda s: "broken")
        assert checker.names == ["a", "b"]

    def test_duplicate_name_rejected(self):
        checker = InvariantChecker()
        checker.register("a", lambda s: None)
        with pytest.raises(ValueError, match="already registered"):
            checker.register("a", lambda s: None)

    def test_check_collects_violations(self):
        checker = InvariantChecker()
        checker.register("ok", lambda s: None)
        checker.register("bad", lambda s: f"state was {s}")
        found = checker.check("x", now_s=3.0)
        assert len(found) == 1
        assert found[0].name == "bad"
        assert found[0].time_s == 3.0
        assert "state was x" in found[0].detail
        assert checker.checks_run == 1
        assert checker.violations == found

    def test_fail_fast_raises_immediately(self):
        checker = InvariantChecker(fail_fast=True)
        checker.register("bad", lambda s: "boom")
        with pytest.raises(InvariantViolation, match="bad: boom"):
            checker.check(None, now_s=1.0)

    def test_assert_clean(self):
        checker = InvariantChecker()
        checker.register("ok", lambda s: None)
        checker.check(None, 0.0)
        checker.assert_clean()
        checker.register("bad", lambda s: "no")
        checker.check(None, 1.0)
        with pytest.raises(InvariantViolation, match="1 invariant violation"):
            checker.assert_clean()


class TestMonotonicTimeHooks:
    def test_normal_run_is_clean(self):
        checker = InvariantChecker()
        env = Environment(hooks=monotonic_time_hooks(checker))

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)

        env.process(proc())
        env.run()
        assert checker.violations == []

    def test_regression_is_caught(self):
        checker = InvariantChecker()
        hooks = monotonic_time_hooks(checker)
        hooks.on_dispatch(None, 5.0)
        with pytest.raises(InvariantViolation, match="time-monotonic"):
            hooks.on_dispatch(None, 4.0)
        assert len(checker.violations) == 1


def _rec(energy=0.0, state=JobState.COMPLETED, end=1.0, requeues=0):
    return SimpleNamespace(energy_j=energy, state=state, end_time_s=end, requeues=requeues)


class TestBuiltinInvariants:
    def test_energy_ledger_balances(self):
        fn = energy_ledger_balances()
        good = SimpleNamespace(records={0: _rec(100.0), 1: _rec(50.0)},
                               idle_energy_j=25.0, total_energy_j=175.0)
        assert fn(good) is None
        bad = SimpleNamespace(records={0: _rec(100.0)},
                              idle_energy_j=25.0, total_energy_j=175.0)
        assert "ledger" in fn(bad)

    def test_energy_ledger_relative_tolerance(self):
        fn = energy_ledger_balances(rel_tol=1e-6)
        nearly = SimpleNamespace(records={0: _rec(1e9)},
                                 idle_energy_j=0.0, total_energy_j=1e9 + 100.0)
        assert fn(nearly) is None  # 1e-7 relative: inside tolerance

    def test_cap_respected_within_settling(self):
        fn = cap_respected(settling_s=5.0, tol_w=1.0)
        state = SimpleNamespace(
            power_steps=[(0.0, 90.0), (10.0, 120.0), (13.0, 80.0), (20.0, 80.0)],
            cap_steps=[(0.0, 100.0)],
        )
        assert fn(state) is None  # 3 s overage < 5 s settling window

    def test_cap_violated_beyond_settling(self):
        fn = cap_respected(settling_s=5.0, tol_w=1.0)
        state = SimpleNamespace(
            power_steps=[(0.0, 90.0), (10.0, 120.0), (17.0, 80.0), (20.0, 80.0)],
            cap_steps=[(0.0, 100.0)],
        )
        assert "over cap" in fn(state)

    def test_cap_overage_intervals_merge(self):
        # Two adjacent over-cap steps form one 6 s overage interval.
        fn = cap_respected(settling_s=5.0, tol_w=1.0)
        state = SimpleNamespace(
            power_steps=[(0.0, 90.0), (10.0, 120.0), (13.0, 110.0), (16.0, 80.0), (20.0, 80.0)],
            cap_steps=[(0.0, 100.0)],
        )
        assert "over cap" in fn(state)

    def test_cap_steps_tracked(self):
        # The cap itself changes mid-run; overage judged against the
        # active cap at each instant.
        fn = cap_respected(settling_s=2.0, tol_w=1.0)
        state = SimpleNamespace(
            power_steps=[(0.0, 120.0), (30.0, 120.0)],
            cap_steps=[(0.0, 150.0), (10.0, 100.0)],  # cap drops under power
        )
        assert "over cap" in fn(state)

    def test_all_jobs_completed(self):
        fn = all_jobs_completed()
        assert fn(SimpleNamespace(records={0: _rec()})) is None
        stuck = SimpleNamespace(records={0: _rec(), 3: _rec(state=JobState.PENDING)})
        assert "3" in fn(stuck)
        no_end = SimpleNamespace(records={1: _rec(end=None)})
        assert "without end time" in fn(no_end)

    def test_requeued_jobs_completed(self):
        fn = requeued_jobs_completed()
        ok = SimpleNamespace(records={0: _rec(requeues=2)})
        assert fn(ok) is None
        stuck = SimpleNamespace(records={0: _rec(requeues=1, state=JobState.RUNNING)})
        assert "stuck" in fn(stuck)

    def test_node_timestamps_monotonic(self):
        fn = node_timestamps_monotonic()
        assert fn(SimpleNamespace(sample_times={0: [0.0, 1.0, 1.0, 2.0]})) is None
        assert "node 1" in fn(SimpleNamespace(sample_times={1: [0.0, 2.0, 1.5]}))


def _small_config(**kw):
    kw.setdefault("n_nodes", 8)
    kw.setdefault("n_jobs", 10)
    kw.setdefault("job_runtime_s", (10.0, 30.0))
    kw.setdefault("submit_horizon_s", 60.0)
    kw.setdefault("power_budget_w", 8000.0)
    return DrillConfig(**kw)


class TestDrillUnderFaults:
    def test_node_crash_requeues_and_everything_completes(self):
        drill = FaultDrill(_small_config(seed=3))
        report = drill.run([
            FaultSpec(FaultKind.NODE_CRASH, at_s=12.0, duration_s=20.0, target=0),
            FaultSpec(FaultKind.NODE_CRASH, at_s=18.0, duration_s=20.0, target=5),
        ])
        assert report.ok, [str(v) for v in report.checker.violations]
        assert report.summary["jobs_completed"] == report.summary["jobs_submitted"]
        # The crashes hit running nodes at t=12/18 on an 8-node cluster.
        assert report.summary["total_requeues"] >= 1

    def test_broker_outage_is_buffered_not_lost(self):
        drill = FaultDrill(_small_config(seed=4))
        report = drill.run([
            FaultSpec(FaultKind.BROKER_OUTAGE, at_s=10.0, duration_s=20.0),
        ])
        assert report.ok, [str(v) for v in report.checker.violations]
        assert report.summary["gateway_reconnects"] == drill.config.n_nodes
        assert report.summary["gateway_republished"] > 0
        # 20 s of silence > the 10 s fail-safe horizon: the controller
        # flew blind and engaged the protective trim, then recovered.
        assert report.summary["failsafe_engagements"] == 1
        assert not drill.failsafe_active

    def test_psu_failure_retargets_cap(self):
        cfg = _small_config(seed=5, shelf_psus=3, shelf_psu_rating_w=3000.0)
        drill = FaultDrill(cfg)
        report = drill.run([
            FaultSpec(FaultKind.PSU_FAILURE, at_s=15.0, duration_s=30.0),
        ])
        assert report.ok, [str(v) for v in report.checker.violations]
        caps = [c for _, c in drill.cap_steps]
        assert min(caps) == pytest.approx(6000.0)   # 2 live PSUs
        assert drill.cap_steps[-1][1] == pytest.approx(8000.0)  # restored
        assert drill.policy.power_budget_w == pytest.approx(8000.0)

    def test_sensor_faults_never_break_invariants(self):
        drill = FaultDrill(_small_config(seed=6))
        report = drill.run([
            FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=8.0, duration_s=15.0, target=2),
            FaultSpec(FaultKind.SENSOR_SPIKE, at_s=20.0, duration_s=10.0, target=3,
                      magnitude=5000.0),
            FaultSpec(FaultKind.CLOCK_DRIFT, at_s=5.0, duration_s=25.0, target=1,
                      magnitude=0.1),
        ])
        assert report.ok, [str(v) for v in report.checker.violations]
        # Drifted stamps stretched but never rewound (checked per node).
        assert report.summary["violations"] == 0

    def test_combined_campaign_all_fault_kinds(self):
        drill = FaultDrill(DrillConfig(seed=7))
        report = drill.run([
            FaultSpec(FaultKind.NODE_CRASH, at_s=25.0, duration_s=40.0, target=3),
            FaultSpec(FaultKind.BROKER_OUTAGE, at_s=50.0, duration_s=15.0),
            FaultSpec(FaultKind.PSU_FAILURE, at_s=70.0, duration_s=60.0),
            FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=40.0, duration_s=10.0, target=9),
            FaultSpec(FaultKind.SENSOR_SPIKE, at_s=90.0, duration_s=10.0, target=5,
                      magnitude=3000.0),
            FaultSpec(FaultKind.CLOCK_DRIFT, at_s=30.0, duration_s=30.0, target=8,
                      magnitude=0.05),
        ])
        assert report.ok, [str(v) for v in report.checker.violations]
        assert len(report.summary["faults_by_kind"]) == 6
        assert report.summary["faults_injected"] == 6
        assert report.summary["faults_recovered"] == 6
        assert report.summary["jobs_completed"] == drill.config.n_jobs
        assert report.summary["invariant_checks"] > 10

    def test_fault_free_run_is_clean(self):
        report = FaultDrill(_small_config(seed=8)).run([])
        assert report.ok
        assert report.summary["faults_injected"] == 0
        assert report.summary["total_requeues"] == 0
        assert report.summary["failsafe_engagements"] == 0

    def test_tampered_ledger_is_detected(self):
        drill = FaultDrill(_small_config(seed=9))
        report = drill.run([])
        assert report.ok
        # Lose some joules behind the accountant's back: caught.
        next(iter(drill.records.values())).energy_j -= 1000.0
        found = drill.checker.check(drill, drill.env.now)
        assert [v.name for v in found] == ["energy-ledger"]

    def test_fail_fast_drill_raises_on_violation(self):
        drill = FaultDrill(_small_config(seed=10), fail_fast=True)
        report = drill.run([])  # healthy run: no raise
        assert report.ok
        drill.total_energy_j += 5000.0
        with pytest.raises(InvariantViolation, match="energy-ledger"):
            drill.checker.check(drill, drill.env.now)

    def test_overlapping_same_target_fault_skipped(self):
        drill = FaultDrill(_small_config(seed=11))
        report = drill.run([
            FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=5.0, duration_s=20.0, target=0),
            FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=10.0, duration_s=20.0, target=0),
        ])
        assert report.ok
        assert report.summary["faults_injected"] == 1
        assert len(list(report.log.of_kind("fault_skipped"))) == 1
