"""The vectorized telemetry hot path: GatewayArray units, per-sample vs
batched digest equivalence, invariants at scale, backlog ordering."""

import numpy as np
import pytest

from repro.cluster import ClusterBuilder
from repro.faults import DrillConfig, FaultDrill, FaultKind, FaultSpec
from repro.hardware import ComputeNode
from repro.monitoring import GatewayArray, GatewayDaemon, MqttBroker
from repro.sim import Environment

#: One of every fault kind, with the sensor dropout kept clear of the
#: broker outage (the documented exception to batched equivalence:
#: heterogeneous per-daemon backoff schedules cannot be mimicked by one
#: shared prober).
EQUIVALENCE_CAMPAIGN = [
    FaultSpec(FaultKind.NODE_CRASH, at_s=25.0, duration_s=30.0, target=3),
    FaultSpec(FaultKind.BROKER_OUTAGE, at_s=40.0, duration_s=14.0),
    FaultSpec(FaultKind.SENSOR_SPIKE, at_s=60.0, duration_s=8.0, target=5, magnitude=900.0),
    FaultSpec(FaultKind.PSU_FAILURE, at_s=70.0, duration_s=40.0),
    FaultSpec(FaultKind.CLOCK_DRIFT, at_s=80.0, duration_s=25.0, target=7, magnitude=2e-4),
    FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=100.0, duration_s=8.0, target=9),
]


def run_drill(n_nodes: int, batched: bool, seed: int = 2026):
    budget_w = 875.0 * n_nodes
    drill = (
        ClusterBuilder(n_nodes=n_nodes, seed=seed)
        .with_gateways(period_s=1.0, batched=batched)
        .with_scheduler(cap_w=budget_w)
        # Shelf scaled with the budget (the drill's default 18/14 ratio)
        # so the feasible cap is not pinned below the idle floor.
        .with_faults(shelf_psu_rating_w=budget_w * 3.0 / 14.0)
        .build_drill()
    )
    return drill.run(faults=EQUIVALENCE_CAMPAIGN)


class TestGatewayArrayUnit:
    def _array(self, n=3, **kw):
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        nodes = [ComputeNode(node_id=i) for i in range(n)]
        array = GatewayArray(env, nodes, broker, period_s=0.5, **kw)
        return env, broker, nodes, array

    def test_publishes_one_batch_per_tick(self):
        env, broker, _, array = self._array()
        collector = broker.connect("c")
        collector.subscribe(array.topic)
        env.run(until=1.0)
        batches = collector.drain()
        assert len(batches) == 3  # t = 0.0, 0.5, 1.0
        payload = batches[0].payload
        assert payload["nodes"] == (0, 1, 2)
        assert payload["t"].shape == payload["p"].shape == (3,)
        assert array.samples_published == 9

    def test_batch_topic_does_not_leak_into_per_node_filter(self):
        env, broker, _, array = self._array()
        per_node = broker.connect("per-node")
        per_node.subscribe("davide/+/power/node")
        env.run(until=1.0)
        assert per_node.drain() == []

    def test_noise_streams_match_per_node_daemons(self):
        """Block-prefetched per-node generators draw the exact values
        N individual daemons would have drawn."""
        env, broker, nodes, array = self._array()
        collector = broker.connect("c")
        collector.subscribe(array.topic)
        env.run(until=2.0)
        batch_p = np.stack([m.payload["p"] for m in collector.drain()])

        env2 = Environment()
        broker2 = MqttBroker(clock=lambda: env2.now)
        nodes2 = [ComputeNode(node_id=i) for i in range(3)]
        daemons = [GatewayDaemon(env2, n, broker2, period_s=0.5) for n in nodes2]
        per = {i: [] for i in range(3)}
        coll2 = broker2.connect("c2")
        coll2.on_message = lambda m: per[m.payload["node"]].append(m.payload["p"])
        coll2.subscribe("davide/+/power/node")
        env2.run(until=2.0)
        per_p = np.stack([per[i] for i in range(3)], axis=1)
        np.testing.assert_array_equal(batch_p, per_p)

    def test_store_and_forward_through_outage(self):
        env, broker, _, array = self._array()
        delivered = []
        collector = broker.connect("c")
        collector.on_message = lambda m: delivered.append(m.payload)
        collector.subscribe(array.topic)
        env.process(_outage(env, broker, start=0.75, end=2.25), name="outage")
        env.run(until=4.0)
        assert array.reconnects == 1
        assert array.buffered_count > 0
        assert array.republished_count == array.buffered_count
        # Every stamp grid point up to t=4.0 accounted for, in order.
        stamps = [p["t"][0] for p in delivered]
        assert stamps == sorted(stamps)

    def test_buffer_limit_drops_oldest_ticks(self):
        env, broker, _, array = self._array(buffer_limit=2)
        env.process(_outage(env, broker, start=0.1, end=3.9), name="outage")
        env.run(until=5.0)
        assert array.buffer_dropped_count > 0
        assert array.backlog == 0  # drained after recovery


def _outage(env, broker, start, end):
    yield env.timeout(start)
    broker.set_online(False)
    yield env.timeout(end - start)
    broker.set_online(True)


class TestDigestEquivalence:
    def test_same_seed_same_digest_16_nodes(self):
        per = run_drill(16, batched=False)
        bat = run_drill(16, batched=True)
        assert per.summary["log_digest"] == bat.summary["log_digest"]
        assert per.summary["violations"] == bat.summary["violations"] == 0

    def test_different_seed_different_digest(self):
        a = run_drill(16, batched=True, seed=1)
        b = run_drill(16, batched=True, seed=2)
        assert a.summary["log_digest"] != b.summary["log_digest"]

    def test_batched_rerun_is_deterministic(self):
        a = run_drill(16, batched=True)
        b = run_drill(16, batched=True)
        assert a.summary == b.summary


class TestInvariantsAtScale:
    def test_invariants_green_at_256_nodes_batched(self):
        report = run_drill(256, batched=True)
        assert report.ok, [str(v) for v in report.checker.violations[:5]]
        assert report.summary["jobs_completed"] == report.summary["jobs_submitted"]


class TestBacklogOrdering:
    def test_reconnect_coinciding_with_tick_keeps_stamp_order(self):
        """Regression: when the recovery probe lands on the same instant
        as a sampling tick, the backlog must drain strictly before the
        live sample is published — subscribers see stamps in order."""
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        node = ComputeNode(node_id=0)
        # backoff == period: the successful probe is simultaneous with
        # the next scheduled tick.
        daemon = GatewayDaemon(env, node, broker, period_s=1.0,
                               retry_backoff_s=1.0, backoff_factor=1.0)
        stamps = []
        collector = broker.connect("c")
        collector.on_message = lambda m: stamps.append(m.payload["t"])
        collector.subscribe(daemon.topic)
        env.process(_outage(env, broker, start=1.5, end=3.75), name="outage")
        env.run(until=8.0)
        assert daemon.reconnects == 1
        assert daemon.republished_count > 0
        assert stamps == sorted(stamps)
        # No telemetry interval unaccounted: one stamp per grid second.
        assert len(stamps) == len(set(stamps)) == 9
