"""Tests for CPU / GPU / memory / interconnect / PSU component models."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hardware import (
    GIGA,
    NVLINK_1,
    PCIE_GEN3_X16,
    POWER8_PLUS,
    TERA,
    TESLA_P100,
    CentaurLink,
    CpuModel,
    GpuModel,
    MemorySubsystem,
    NodeFabric,
    NodeLevelSupply,
    PsuModel,
    RackLevelSupply,
    consolidation_savings,
    default_pstates,
)


class TestCpuModel:
    def test_pstate_ladder_is_fastest_first(self):
        ladder = default_pstates()
        freqs = [p.frequency_hz for p in ladder]
        assert freqs == sorted(freqs, reverse=True)
        assert freqs[0] == POWER8_PLUS.max_clock_hz
        assert freqs[-1] == POWER8_PLUS.min_clock_hz

    def test_power_calibration_at_envelope_corners(self):
        cpu = CpuModel()
        assert cpu.power_w(1.0) == pytest.approx(POWER8_PLUS.tdp_w)
        assert cpu.power_w(0.0) == pytest.approx(POWER8_PLUS.idle_w)

    def test_power_monotone_in_utilization(self):
        cpu = CpuModel()
        powers = [cpu.power_w(u) for u in np.linspace(0, 1, 11)]
        assert all(a <= b for a, b in zip(powers, powers[1:]))

    def test_lower_pstate_draws_less_power(self):
        cpu = CpuModel()
        p_fast = cpu.power_w(1.0)
        cpu.set_pstate(len(cpu.pstates) - 1)
        assert cpu.power_w(1.0) < p_fast

    def test_set_frequency_clamps_to_ladder(self):
        cpu = CpuModel()
        cpu.set_frequency(1.0)  # below the bottom
        assert cpu.frequency_hz == POWER8_PLUS.min_clock_hz
        cpu.set_frequency(POWER8_PLUS.max_clock_hz * 2)
        assert cpu.frequency_hz == POWER8_PLUS.max_clock_hz

    def test_set_frequency_picks_slowest_sufficient_state(self):
        cpu = CpuModel()
        target = 3.0 * GIGA
        cpu.set_frequency(target)
        assert cpu.frequency_hz >= target
        idx = cpu.pstate_index
        if idx + 1 < len(cpu.pstates):
            assert cpu.pstates[idx + 1].frequency_hz < target

    def test_core_gating_reduces_power_and_perf(self):
        cpu = CpuModel()
        full_p, full_f = cpu.power_w(1.0), cpu.peak_flops()
        cpu.set_active_cores(2)
        assert cpu.power_w(1.0) < full_p
        assert cpu.peak_flops() == pytest.approx(full_f * 2 / 8)

    def test_core_gating_bounds(self):
        cpu = CpuModel()
        with pytest.raises(ValueError):
            cpu.set_active_cores(0)
        with pytest.raises(ValueError):
            cpu.set_active_cores(9)

    def test_smt_levels(self):
        cpu = CpuModel()
        for smt in (1, 2, 4, 8):
            cpu.set_smt_level(smt)
            assert cpu.smt_level == smt
        with pytest.raises(ValueError):
            cpu.set_smt_level(3)

    def test_smt_efficiency_monotone(self):
        effs = [CpuModel.smt_efficiency(s) for s in (1, 2, 4, 8)]
        assert all(a < b for a, b in zip(effs, effs[1:]))
        assert effs[0] == 1.0

    def test_peak_flops_matches_spec(self):
        cpu = CpuModel()
        # 8 cores x 8 flops/cycle x 4 GHz = 256 GFlops
        assert cpu.peak_flops() == pytest.approx(256e9)

    def test_roofline_bandwidth_bound(self):
        cpu = CpuModel()
        low_ai = cpu.attainable_flops(arithmetic_intensity=0.1, mem_bandwidth_Bps=100e9)
        assert low_ai == pytest.approx(10e9)
        high_ai = cpu.attainable_flops(arithmetic_intensity=1e6, mem_bandwidth_Bps=100e9)
        assert high_ai == pytest.approx(cpu.peak_flops())

    def test_utilization_out_of_range(self):
        cpu = CpuModel()
        with pytest.raises(ValueError):
            cpu.power_w(1.5)
        with pytest.raises(ValueError):
            cpu.power_w(-0.1)

    @given(st.floats(min_value=0.0, max_value=1.0), st.integers(min_value=0, max_value=7))
    def test_power_always_within_envelope(self, util, pstate):
        cpu = CpuModel()
        cpu.set_pstate(pstate)
        p = cpu.power_w(util)
        assert 0 < p <= POWER8_PLUS.tdp_w * 1.001


class TestGpuModel:
    def test_uncapped_full_load_hits_tdp(self):
        gpu = GpuModel()
        assert gpu.power_w(1.0) == pytest.approx(TESLA_P100.tdp_w)

    def test_idle_power_below_tdp(self):
        gpu = GpuModel()
        assert gpu.power_w(0.0) < TESLA_P100.tdp_w / 2

    def test_power_limit_enforced(self):
        gpu = GpuModel()
        gpu.set_power_limit(200.0)
        op = gpu.operating_point(1.0)
        assert op.power_w <= 200.0 + 1e-9
        assert op.throttled
        assert op.clock_hz < TESLA_P100.boost_clock_hz

    def test_power_limit_clamped_to_valid_range(self):
        gpu = GpuModel()
        gpu.set_power_limit(10.0)
        assert gpu.power_limit_w == TESLA_P100.idle_w
        gpu.set_power_limit(500.0)
        assert gpu.power_limit_w == TESLA_P100.tdp_w

    def test_throttle_reduces_peak_flops(self):
        gpu = GpuModel()
        full = gpu.peak_flops("fp64")
        gpu.set_power_limit(180.0)
        assert gpu.peak_flops("fp64") < full

    def test_precision_peaks_match_paper(self):
        gpu = GpuModel()
        assert gpu.spec.fp64_flops == pytest.approx(5.3 * TERA)
        assert gpu.spec.fp32_flops == pytest.approx(10.6 * TERA)
        assert gpu.spec.fp16_flops == pytest.approx(21.2 * TERA)

    def test_unknown_precision_rejected(self):
        with pytest.raises(ValueError):
            GpuModel().peak_flops("fp8")

    def test_sleep_state(self):
        gpu = GpuModel()
        gpu.sleep()
        assert gpu.asleep
        assert gpu.power_w(1.0) == GpuModel.SLEEP_POWER_W
        assert gpu.operating_point().clock_hz == 0.0
        gpu.wake()
        assert not gpu.asleep
        assert gpu.power_w(1.0) == pytest.approx(TESLA_P100.tdp_w)

    def test_roofline_memory_bound_kernel(self):
        gpu = GpuModel()
        # AI = 1 flop/byte on 732 GB/s HBM -> 732 GFlops, far below peak.
        assert gpu.attainable_flops(1.0) == pytest.approx(732e9)

    def test_roofline_compute_bound_kernel(self):
        gpu = GpuModel()
        assert gpu.attainable_flops(1e9) == pytest.approx(5.3 * TERA)

    def test_kernel_time(self):
        gpu = GpuModel()
        t = gpu.kernel_time_s(flops=5.3e12, arithmetic_intensity=1e9)
        assert t == pytest.approx(1.0)

    @given(st.floats(min_value=30.0, max_value=300.0), st.floats(min_value=0.0, max_value=1.0))
    def test_power_never_exceeds_limit_when_throttled(self, limit, util):
        gpu = GpuModel()
        gpu.set_power_limit(limit)
        op = gpu.operating_point(util)
        # The clock cannot drop below 60% of base, so the physical floor
        # at that clock bounds how far an aggressive limit can be honoured.
        floor = gpu._power_at_clock(0.6 * gpu.spec.base_clock_hz, util)
        assert op.power_w <= max(gpu.power_limit_w, floor) + 1e-9


class TestMemorySubsystem:
    def test_link_bandwidth_matches_paper(self):
        link = CentaurLink()
        assert link.total_bandwidth_Bps == pytest.approx(28.8e9)
        assert link.read_bandwidth_Bps == pytest.approx(19.2e9)

    def test_sustained_bandwidth_scales_with_population(self):
        mem = MemorySubsystem()
        # 4 of 8 Centaurs -> half of 230 GB/s.
        assert mem.sustained_bandwidth_Bps == pytest.approx(115e9)

    def test_l4_aggregation(self):
        mem = MemorySubsystem()
        assert mem.l4_cache_bytes == 4 * 16 * 1024**2

    def test_effective_bandwidth_peaks_at_two_thirds_read(self):
        mem = MemorySubsystem()
        best = mem.effective_bandwidth_Bps(2 / 3)
        assert best >= mem.effective_bandwidth_Bps(0.5)
        assert best >= mem.effective_bandwidth_Bps(0.9)
        assert best >= mem.effective_bandwidth_Bps(1.0)

    def test_pure_write_stream_is_slowest(self):
        mem = MemorySubsystem()
        assert mem.effective_bandwidth_Bps(0.0) < mem.effective_bandwidth_Bps(1.0)

    def test_stream_time_positive(self):
        mem = MemorySubsystem()
        assert mem.stream_time_s(1e9) > 0

    def test_invalid_read_fraction(self):
        with pytest.raises(ValueError):
            MemorySubsystem().effective_bandwidth_Bps(1.5)

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_effective_bandwidth_never_exceeds_sustained(self, rf):
        mem = MemorySubsystem()
        assert mem.effective_bandwidth_Bps(rf) <= mem.sustained_bandwidth_Bps * 1.001


class TestNodeFabric:
    def test_endpoint_inventory(self):
        fab = NodeFabric()
        assert sorted(fab.endpoints("cpu")) == ["cpu0", "cpu1"]
        assert sorted(fab.endpoints("gpu")) == ["gpu0", "gpu1", "gpu2", "gpu3"]
        assert sorted(fab.endpoints("nic")) == ["nic0", "nic1"]

    def test_cpu_gpu_gang_bandwidth_is_80gbs_bidir(self):
        fab = NodeFabric()
        cost = fab.transfer("cpu0", "gpu0", 1.0)
        # 2-link gang: 40 GB/s per direction, 80 GB/s bidirectional.
        assert cost.bandwidth_Bps == pytest.approx(40e9)

    def test_same_socket_gpu_peers_use_nvlink(self):
        fab = NodeFabric()
        assert fab.same_socket(0, 1)
        assert fab.gpu_peer_bandwidth_Bps(0, 1) == pytest.approx(40e9)

    def test_cross_socket_gpus_bottleneck_on_smp(self):
        fab = NodeFabric()
        assert not fab.same_socket(0, 2)
        assert fab.gpu_peer_bandwidth_Bps(0, 2) == pytest.approx(NodeFabric.SMP_BUS.bandwidth_Bps)

    def test_transfer_time_alpha_beta(self):
        fab = NodeFabric()
        cost = fab.transfer("cpu0", "gpu0", 40e9)
        assert cost.time_s == pytest.approx(1.0 + NVLINK_1.latency_s, rel=1e-6)

    def test_self_transfer_is_free(self):
        fab = NodeFabric()
        cost = fab.transfer("gpu0", "gpu0", 1e12)
        assert cost.time_s == 0.0

    def test_pcie_fallback_degrades_nvlink_edges(self):
        fab = NodeFabric()
        pcie_fab = fab.pcie_fallback()
        assert pcie_fab.transfer("cpu0", "gpu0", 1.0).bandwidth_Bps == pytest.approx(
            PCIE_GEN3_X16.bandwidth_Bps
        )
        # Original untouched.
        assert fab.transfer("cpu0", "gpu0", 1.0).bandwidth_Bps == pytest.approx(40e9)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            NodeFabric().transfer("cpu0", "gpu0", -1.0)


class TestPsuModels:
    def test_efficiency_curve_through_certification_points(self):
        psu = PsuModel(rating_w=2000)
        assert psu.efficiency(0.2) == pytest.approx(0.88, abs=0.01)
        assert psu.efficiency(0.5) == pytest.approx(0.92, abs=0.01)
        assert psu.efficiency(1.0) == pytest.approx(0.89, abs=0.01)

    def test_efficiency_collapses_at_low_load(self):
        psu = PsuModel(rating_w=2000)
        assert psu.efficiency(0.02) < psu.efficiency(0.2)
        assert psu.efficiency(0.0) == 0.0

    def test_input_power_exceeds_output(self):
        psu = PsuModel(rating_w=2000)
        assert psu.input_power_w(1000) > 1000

    def test_rack_shelf_activates_minimum_psus(self):
        shelf = RackLevelSupply(PsuModel(rating_w=6000), n_psus=6, min_active=2)
        assert shelf.active_psus(100.0) == 2
        assert shelf.active_psus(30000.0) == 6

    def test_rack_shelf_rejects_overload(self):
        shelf = RackLevelSupply(PsuModel(rating_w=6000), n_psus=6)
        with pytest.raises(ValueError):
            shelf.input_power_w([40000.0])

    def test_consolidation_saves_power_at_partial_load(self):
        # 15 nodes at ~1.3 kW each: node PSUs run at ~33% of a 2 kW rating,
        # the shelf runs few PSUs near the sweet spot.
        node_psu = PsuModel(rating_w=2000)
        shelf = RackLevelSupply(PsuModel(rating_w=6000), n_psus=6, min_active=2)
        result = consolidation_savings([1300.0] * 15, node_psu, shelf)
        assert result["savings_fraction"] > 0.0
        assert result["savings_fraction"] <= 0.08  # "up to 5%" ballpark
        assert result["node_level_psus"] == 30
        assert result["rack_level_psus"] == 6

    def test_node_level_supply_counts(self):
        sup = NodeLevelSupply(PsuModel(rating_w=2000), psus_per_node=2)
        assert sup.total_psus(15) == 30

    @given(st.floats(min_value=0.05, max_value=1.0))
    def test_efficiency_bounded(self, load):
        psu = PsuModel(rating_w=1000)
        assert 0.0 < psu.efficiency(load) < 1.0
