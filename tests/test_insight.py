"""Tests for the data-intelligence layer (anomalies, hazards, inefficiency)."""

import numpy as np
import pytest

from repro.monitoring import (
    EfficiencyAuditor,
    HazardDetector,
    PowerAnomalyDetector,
)
from repro.power import PowerTrace
from repro.scheduler import Job, JobRecord


def trace_of(values, rate=100.0):
    values = np.asarray(values, dtype=float)
    return PowerTrace(np.arange(values.size) / rate, values)


class TestPowerAnomalyDetector:
    def test_clean_noise_raises_nothing(self):
        rng = np.random.default_rng(0)
        tr = trace_of(1500.0 + rng.normal(0, 5, 2000))
        assert PowerAnomalyDetector().scan(tr) == []

    def test_spike_detected_with_time_and_value(self):
        rng = np.random.default_rng(1)
        vals = 1500.0 + rng.normal(0, 5, 2000)
        vals[1234] = 2400.0  # a 180-sigma spike
        findings = PowerAnomalyDetector().scan(trace_of(vals), subject="node7")
        assert len(findings) == 1
        f = findings[0]
        assert f.kind == "anomaly" and f.subject == "node7"
        assert f.value == pytest.approx(2400.0)
        assert f.time_s == pytest.approx(12.34, abs=0.01)

    def test_phase_steps_are_not_anomalies(self):
        # A legitimate compute/idle square wave must not trigger: the
        # persistence check classifies steps as regime changes.
        rng = np.random.default_rng(2)
        t = np.arange(4000) / 100.0
        vals = np.where((t % 20) < 12, 1800.0, 700.0) + rng.normal(0, 5, t.size)
        findings = PowerAnomalyDetector(threshold=8.0).scan(PowerTrace(t, vals))
        assert findings == []

    def test_spike_on_top_of_phase_structure_still_detected(self):
        rng = np.random.default_rng(5)
        t = np.arange(4000) / 100.0
        vals = np.where((t % 20) < 12, 1800.0, 700.0) + rng.normal(0, 5, t.size)
        vals[2500] = 3200.0  # genuine isolated fault on a plateau
        findings = PowerAnomalyDetector(threshold=8.0).scan(PowerTrace(t, vals))
        assert len(findings) == 1
        assert findings[0].value == pytest.approx(3200.0)

    def test_short_trace_skipped(self):
        assert PowerAnomalyDetector(window=64).scan(trace_of(np.ones(10))) == []

    def test_stuck_sensor_detected(self):
        rng = np.random.default_rng(3)
        vals = 1000.0 + rng.normal(0, 3, 1000)
        vals[300:600] = 1234.5  # frozen reading
        [finding] = PowerAnomalyDetector().stuck_sensor(trace_of(vals), flat_samples=200)
        assert finding.severity == "critical"
        assert finding.value == pytest.approx(1234.5)

    def test_healthy_sensor_not_flagged(self):
        rng = np.random.default_rng(4)
        vals = 1000.0 + rng.normal(0, 3, 1000)
        assert PowerAnomalyDetector().stuck_sensor(trace_of(vals)) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            PowerAnomalyDetector(window=4)
        with pytest.raises(ValueError):
            PowerAnomalyDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PowerAnomalyDetector().stuck_sensor(trace_of(np.ones(10)), flat_samples=1)


class TestHazardDetector:
    def test_over_limit_critical(self):
        det = HazardDetector(limit_w=30e3)
        tr = trace_of(np.concatenate([np.full(50, 25e3), np.full(50, 31e3)]))
        findings = det.scan(tr, subject="rack0")
        assert any(f.severity == "critical" for f in findings)

    def test_sustained_near_limit_warning(self):
        det = HazardDetector(limit_w=30e3, warn_fraction=0.9, dwell_s=0.3)
        tr = trace_of(np.full(100, 28e3))  # 93% of limit for 1 s
        findings = det.scan(tr)
        assert [f.severity for f in findings] == ["warning"]

    def test_comfortable_margin_silent(self):
        det = HazardDetector(limit_w=30e3)
        assert det.scan(trace_of(np.full(100, 20e3))) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            HazardDetector(limit_w=0.0)
        with pytest.raises(ValueError):
            HazardDetector(limit_w=1.0, warn_fraction=1.0)


class TestEfficiencyAuditor:
    def record(self, jid, app, per_node_w, nodes=2, duration=100.0):
        job = Job(job_id=jid, user="u", app=app, n_nodes=nodes, walltime_req_s=200.0,
                  submit_time_s=0.0, true_runtime_s=duration,
                  true_power_per_node_w=per_node_w)
        rec = JobRecord(job=job)
        rec.start_time_s, rec.end_time_s = 0.0, duration
        rec.nodes = tuple(range(nodes))
        rec.energy_j = per_node_w * nodes * duration
        return rec

    def test_underdrawing_job_flagged(self):
        records = [self.record(i, "qe", 1700.0) for i in range(5)]
        records.append(self.record(99, "qe", 600.0))  # GPUs clearly idle
        findings = EfficiencyAuditor().audit_jobs(records)
        assert len(findings) == 1
        assert findings[0].subject == "job 99"
        assert "idle components" in findings[0].message

    def test_homogeneous_class_clean(self):
        records = [self.record(i, "nemo", 1250.0 + i) for i in range(6)]
        assert EfficiencyAuditor().audit_jobs(records) == []

    def test_classes_audited_independently(self):
        # 600 W/node is fine for a hypothetical CPU app class but not QE.
        records = [self.record(i, "qe", 1700.0) for i in range(4)]
        records += [self.record(10 + i, "cpuapp", 600.0) for i in range(4)]
        assert EfficiencyAuditor().audit_jobs(records) == []

    def test_idle_capacity_with_queue(self):
        auditor = EfficiencyAuditor()
        [finding] = auditor.audit_idle_capacity(utilization=0.4, queue_length=12)
        assert finding.kind == "inefficiency"
        assert auditor.audit_idle_capacity(utilization=0.95, queue_length=12) == []
        assert auditor.audit_idle_capacity(utilization=0.4, queue_length=0) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            EfficiencyAuditor(underdraw_fraction=1.0)
        with pytest.raises(ValueError):
            EfficiencyAuditor().audit_idle_capacity(utilization=1.5, queue_length=0)
        with pytest.raises(ValueError):
            EfficiencyAuditor().audit_idle_capacity(utilization=0.5, queue_length=-1)
