"""Equivalence contract between the three simulator cores, the accumulated
stretch metric, and combined reactive-cap + node-outage behaviour.

DESIGN.md §9–10: the event-calendar core, the structure-of-arrays core
(``core="array"``) and the naive reference loop (``reference=True``)
share the segment arithmetic
(`_settle`/`_set_speed`/`_PowerLedger`/`_resolve_ledger`), so at equal
seeds they must produce **float-identical** results — not approximately
equal.  These tests pin that contract across policies, caps and fault
injection, because any accidental divergence (a reordered float sum, a
recomputed-instead-of-stored ETA) silently invalidates every benchmark
comparison between the cores.  The broad seeded sweep lives in
``tests/test_array_equivalence.py`` on top of ``tests/diff_harness.py``;
this file keeps the hand-built scenarios whose expected values are
derived in closed form.
"""

import numpy as np
import pytest

from repro.prediction import FeatureEncoder, JobPowerModel, OnlineJobPowerModel
from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    FifoScheduler,
    Job,
    NodeOutage,
    PowerAwareScheduler,
    WorkloadConfig,
    WorkloadGenerator,
)

N_NODES = 45


def _workload(seed, n=150, load=1.15):
    return WorkloadGenerator(
        WorkloadConfig(n_jobs=n, cluster_nodes=N_NODES, load_factor=load),
        rng=np.random.default_rng(seed),
    ).generate()


def job(jid, nodes, runtime, submit=0.0, walltime=None, power=1500.0):
    return Job(
        job_id=jid, user=f"user{jid % 3}", app="qe", n_nodes=nodes,
        walltime_req_s=walltime if walltime is not None else runtime * 1.5,
        submit_time_s=submit, true_runtime_s=runtime, true_power_per_node_w=power,
    )


OUTAGES = (
    NodeOutage(at_s=20_000.0, node_id=3, duration_s=5000.0),
    NodeOutage(at_s=60_000.0, node_id=20, duration_s=3000.0),
    NodeOutage(at_s=60_000.0, node_id=21, duration_s=2500.0),
)


def assert_identical(a, b):
    """Float equality on everything a SimulationResult exposes."""
    assert len(a.records) == len(b.records)
    for ra, rb in zip(a.records, b.records):
        assert ra.job.job_id == rb.job.job_id
        assert ra.state == rb.state
        assert ra.start_time_s == rb.start_time_s
        assert ra.end_time_s == rb.end_time_s
        assert ra.nodes == rb.nodes
        assert ra.energy_j == rb.energy_j
        assert ra.stretch == rb.stretch
        assert ra.requeues == rb.requeues
        assert ra.elapsed_running_s == rb.elapsed_running_s
        assert ra.work_progressed_s == rb.work_progressed_s
        assert ra.predicted_power_w == rb.predicted_power_w
    assert np.array_equal(a.power_trace.times_s, b.power_trace.times_s)
    assert np.array_equal(a.power_trace.power_w, b.power_trace.power_w)
    assert a.makespan_s == b.makespan_s
    assert a.total_energy_j == b.total_energy_j
    assert a.overdemand_s == b.overdemand_s
    assert a.utilization == b.utilization
    assert a.n_requeues == b.n_requeues
    # QoS metrics are pure functions of the above, but pin them anyway.
    assert a.mean_wait_s() == b.mean_wait_s()
    assert a.p95_wait_s() == b.p95_wait_s()
    assert a.mean_bounded_slowdown() == b.mean_bounded_slowdown()
    assert a.mean_stretch() == b.mean_stretch()
    assert a.cap_violation_fraction() == b.cap_violation_fraction()


def _run_both(jobs, policy_factory, **kw):
    """Reference vs calendar, with the array core pinned to the calendar
    core as a side effect — every scenario in this file exercises all
    three backends."""
    ref = ClusterSimulator(N_NODES, policy_factory(), core="reference", **kw).run(jobs)
    fast = ClusterSimulator(N_NODES, policy_factory(), core="calendar", **kw).run(jobs)
    arr = ClusterSimulator(N_NODES, policy_factory(), core="array", **kw).run(jobs)
    assert_identical(fast, arr)
    return ref, fast


class TestCoreEquivalence:
    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_fifo_uncapped(self, seed):
        assert_identical(*_run_both(_workload(seed), FifoScheduler))

    @pytest.mark.parametrize("seed", [0, 3, 11])
    def test_easy_with_cap(self, seed):
        assert_identical(
            *_run_both(_workload(seed), EasyBackfillScheduler, cap_w=50e3))

    @pytest.mark.parametrize("seed", [0, 3])
    def test_easy_cap_and_outages(self, seed):
        ref, fast = _run_both(
            _workload(seed), EasyBackfillScheduler, cap_w=50e3,
            node_outages=OUTAGES)
        assert_identical(ref, fast)
        assert ref.n_requeues > 0  # the scenario actually exercises requeues

    @pytest.mark.parametrize("seed", [0, 3])
    def test_power_aware_combined(self, seed):
        make = lambda: PowerAwareScheduler(52e3, predictor=lambda j: j.true_power_w)
        assert_identical(*_run_both(_workload(seed), make, cap_w=52e3))

    def test_power_aware_outages_and_trained_predictor(self):
        jobs = _workload(7, n=180)
        train, test = jobs[:60], jobs[60:]
        ref, fast = _run_both(
            test,
            lambda: PowerAwareScheduler(
                52e3, predictor=JobPowerModel.fit_ridge(train)),
            cap_w=52e3, node_outages=OUTAGES)
        assert_identical(ref, fast)

    def test_min_speed_floor_scenario(self):
        # Cap far below demand: the trim clips at the speed floor and
        # demand exceeds the cap for entire segments.
        stream = [job(0, 2, 500.0, power=2000.0), job(1, 2, 500.0, power=2000.0)]
        ref, fast = _run_both(
            stream, FifoScheduler, cap_w=2000.0, min_speed=0.5)
        assert_identical(ref, fast)
        assert ref.overdemand_s > 0


class TestAccumulatedStretch:
    def test_partial_life_trim(self):
        """A job trimmed for only part of its life accumulates the true
        elapsed/progress ratio, not the worst instantaneous 1/speed."""
        # Node 0 runs job A alone (no trim); job B arrives at t=500 and
        # pushes demand over the cap for the rest of A's life.
        cap = 2700.0
        stream = [
            job(0, 1, 1000.0, submit=0.0, power=1500.0),
            job(1, 1, 1000.0, submit=500.0, power=1500.0),
        ]
        result = ClusterSimulator(
            2, FifoScheduler(), idle_node_power_w=300.0, cap_w=cap
        ).run(stream)
        rec_a = result.records[0]
        # Both running: demand 3000 W, floor 600 W -> rho = 2100/2400.
        rho = (cap - 600.0) / 2400.0
        speed = rho**0.75
        # A: 500 s untrimmed (500 s work) + 500 s of work at `speed`.
        expected = (500.0 + 500.0 / speed) / 1000.0
        assert rec_a.stretch == pytest.approx(expected, rel=1e-12)
        # The old max-instantaneous metric would report 1/speed.
        assert rec_a.stretch < 1.0 / speed
        assert rec_a.elapsed_running_s == pytest.approx(500.0 + 500.0 / speed)
        assert rec_a.work_progressed_s == pytest.approx(1000.0)

    def test_untrimmed_job_has_unit_stretch(self):
        result = ClusterSimulator(4, FifoScheduler()).run([job(0, 2, 250.0)])
        assert result.records[0].stretch == 1.0
        assert result.mean_stretch() == 1.0


class TestCapWithOutages:
    def test_requeue_under_active_trim(self):
        """A job killed while the reactive trim is active keeps its
        burnt joules, restarts from zero work, and the overdemand
        bookkeeping stays consistent with the post-trim trace."""
        cap = 2700.0
        # Two 1-node jobs saturate the 2-node machine and the cap; node
        # 0 dies mid-trim, killing job 0; the node recovers and job 0
        # reruns from scratch.
        stream = [
            job(0, 1, 1000.0, submit=0.0, power=1500.0),
            job(1, 1, 1000.0, submit=0.0, power=1500.0),
        ]
        outage = NodeOutage(at_s=400.0, node_id=0, duration_s=300.0)
        result = ClusterSimulator(
            2, FifoScheduler(), idle_node_power_w=300.0, cap_w=cap,
            node_outages=(outage,),
        ).run(stream)
        rec = result.records[0]
        rho = (cap - 600.0) / 2400.0  # both running, demand 3000 W
        speed = rho**0.75
        assert result.n_requeues == 1
        assert rec.requeues == 1
        # Burnt joules from the killed attempt stay on the record: the
        # first 400 s at the trimmed grant (1500 W scaled), plus the
        # full energy of the successful rerun.
        granted_trimmed = 300.0 + 1200.0 * rho  # job floor + dynamic*rho
        first_attempt_j = granted_trimmed * 400.0
        assert rec.energy_j > first_attempt_j  # rerun energy on top
        # Work restarted from zero: progressed work across both attempts
        # exceeds the job's 1000 s requirement by the lost progress.
        lost_work = 400.0 * speed
        assert rec.work_progressed_s == pytest.approx(1000.0 + lost_work)
        # Job 1 was trimmed only while both jobs ran; overdemand equals
        # the wall-clock with demand above cap, which matches the trace.
        trace_t, trace_p = result.power_trace.times_s, result.power_trace.power_w
        post_trim_over = float(
            np.diff(trace_t)[trace_p[:-1] > cap * (1 + 1e-9)].sum())
        assert post_trim_over == 0.0  # the trim held the envelope
        assert result.cap_violation_fraction() == 0.0
        assert result.overdemand_s > 0.0  # but demand did exceed the cap
        # Overdemand = the exact interval both jobs shared the machine.
        both_running = 400.0 + (result.records[1].end_time_s - 700.0
                                if result.records[1].end_time_s > 700.0 else 0.0)
        assert result.overdemand_s == pytest.approx(both_running)

    def test_equivalence_under_combined_stress(self):
        results = [
            ClusterSimulator(
                N_NODES, EasyBackfillScheduler(), cap_w=48e3,
                node_outages=OUTAGES, core=core).run(_workload(5))
            for core in ("reference", "calendar", "array")
        ]
        assert_identical(results[0], results[1])
        assert_identical(results[0], results[2])


class TestBatchPrediction:
    def test_encode_batch_matches_encode(self):
        jobs = _workload(7, n=120)
        enc = FeatureEncoder().fit(jobs[:80])
        assert np.allclose(enc.encode_all(jobs), enc.encode_batch(jobs))

    def test_model_batch_matches_scalar(self):
        jobs = _workload(7, n=200)
        model = JobPowerModel.fit_ridge(jobs[:120])
        batch = model.predict_batch(jobs[120:])
        scalar = np.array([model(j) for j in jobs[120:]])
        assert np.allclose(batch, scalar)

    def test_online_batch_prior_and_trained(self):
        jobs = _workload(9, n=120)
        enc = FeatureEncoder().fit(jobs)
        online = OnlineJobPowerModel(enc, min_samples=5)
        # Before min_samples: the prior, for every queue entry.
        assert np.all(online.predict_batch(jobs[:4])
                      == np.array([online(j) for j in jobs[:4]]))
        result = ClusterSimulator(N_NODES, FifoScheduler()).run(jobs[:30])
        for rec in result.records[:10]:
            online.observe(rec)
        batch = online.predict_batch(jobs[30:])
        scalar = np.array([online(j) for j in jobs[30:]])
        assert np.allclose(batch, scalar)

    def test_power_aware_batched_pricing_equivalence(self):
        """Batched queue pricing must not change dispatch decisions."""
        jobs = _workload(11, n=160)
        train, test = jobs[:60], jobs[60:]
        model = JobPowerModel.fit_ridge(train)

        class ScalarOnly:
            """The same model with its batch path hidden."""

            def __call__(self, j):
                return model(j)

        batched = ClusterSimulator(
            N_NODES, PowerAwareScheduler(52e3, predictor=model), cap_w=52e3
        ).run(test)
        scalar = ClusterSimulator(
            N_NODES, PowerAwareScheduler(52e3, predictor=ScalarOnly()), cap_w=52e3
        ).run(test)
        # Prices agree to allclose (matmul vs per-row dot), and every
        # scheduling outcome is the same.
        for rb, rs in zip(batched.records, scalar.records):
            assert rb.predicted_power_w == pytest.approx(rs.predicted_power_w)
            assert rb.start_time_s == rs.start_time_s
            assert rb.nodes == rs.nodes
        assert batched.makespan_s == scalar.makespan_s
