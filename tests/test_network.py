"""Tests for the fat-tree fabric, routing analysis and collective models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import (
    EDR_DUAL_RAIL,
    CommModel,
    DualRailFabric,
    FatTree,
    analyze_traffic,
    dmodk_spine,
    permutation_traffic,
    uniform_traffic,
)


class TestFatTree:
    def test_davide_tree_is_nonblocking(self):
        tree = FatTree(n_nodes=45, switch_radix=36, oversubscription=1.0)
        assert tree.is_nonblocking()
        assert tree.bisection_bandwidth_Bps() >= tree.full_bisection_Bps() * 0.999

    def test_oversubscribed_tree_loses_bisection(self):
        full = FatTree(n_nodes=45, switch_radix=36, oversubscription=1.0)
        tapered = FatTree(n_nodes=45, switch_radix=36, oversubscription=2.0)
        assert not tapered.is_nonblocking()
        assert tapered.bisection_bandwidth_Bps() < full.bisection_bandwidth_Bps()

    def test_leaf_sizing_nonblocking_radix36(self):
        tree = FatTree(n_nodes=45, switch_radix=36, oversubscription=1.0)
        assert tree.shape.hosts_per_leaf == 18
        assert tree.shape.uplinks_per_leaf == 18
        assert tree.shape.n_leaves == 3

    def test_leaf_of_host(self):
        tree = FatTree(n_nodes=45, switch_radix=36)
        assert tree.leaf_of(0) == 0
        assert tree.leaf_of(18) == 1
        assert tree.leaf_of(44) == 2
        with pytest.raises(IndexError):
            tree.leaf_of(45)

    def test_hop_counts(self):
        tree = FatTree(n_nodes=45, switch_radix=36)
        assert tree.hop_count(0, 0) == 0
        assert tree.hop_count(0, 1) == 1   # same leaf
        assert tree.hop_count(0, 20) == 3  # leaf-spine-leaf

    def test_validation(self):
        with pytest.raises(ValueError):
            FatTree(n_nodes=0)
        with pytest.raises(ValueError):
            FatTree(n_nodes=4, switch_radix=1)
        with pytest.raises(ValueError):
            FatTree(n_nodes=4, oversubscription=0.5)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=40))
    def test_bisection_never_exceeds_full(self, n):
        tree = FatTree(n_nodes=n, switch_radix=36)
        assert tree.bisection_bandwidth_Bps() <= tree.full_bisection_Bps() * 1.001


class TestDualRail:
    def test_node_injection_is_200_gbps(self):
        fabric = DualRailFabric(n_nodes=45)
        assert fabric.node_injection_Bps == pytest.approx(25e9)  # 200 Gb/s

    def test_two_independent_planes(self):
        fabric = DualRailFabric(n_nodes=45)
        assert fabric.is_nonblocking()
        assert fabric.switch_count() == 2 * fabric.rails[0].switch_count()
        assert fabric.bisection_bandwidth_Bps() == pytest.approx(
            2 * fabric.rails[0].bisection_bandwidth_Bps()
        )


class TestRouting:
    def test_dmodk_spine_range(self):
        assert dmodk_spine(7, 4) == 3
        with pytest.raises(ValueError):
            dmodk_spine(0, 0)

    def test_intra_leaf_traffic_uses_no_uplinks(self):
        tree = FatTree(n_nodes=45, switch_radix=36)
        flows = [(0, 1, 1e9), (2, 3, 1e9)]  # all inside leaf 0
        analysis = analyze_traffic(tree, flows)
        assert analysis.max_uplink_load_Bps == 0.0
        assert analysis.max_hostlink_load_Bps == 1e9

    def test_nonblocking_tree_carries_permutation_uncongested(self):
        tree = FatTree(n_nodes=36, switch_radix=36, oversubscription=1.0)
        flows = permutation_traffic(36, tree.link.bandwidth_Bps, shift=tree.shape.hosts_per_leaf)
        analysis = analyze_traffic(tree, flows)
        assert not analysis.congested

    def test_oversubscribed_tree_congests_on_adversarial_shift(self):
        # 3 leaves of 24 hosts with only 12 uplinks each: a full-leaf shift
        # puts 24 wire-rate flows onto 12 uplinks -> 2x overload.
        tree = FatTree(n_nodes=72, switch_radix=36, oversubscription=2.0)
        flows = permutation_traffic(72, tree.link.bandwidth_Bps, shift=tree.shape.hosts_per_leaf)
        analysis = analyze_traffic(tree, flows)
        assert analysis.congested
        # The same pattern on a non-blocking tree sails through.
        full = FatTree(n_nodes=72, switch_radix=36, oversubscription=1.0)
        flows = permutation_traffic(72, full.link.bandwidth_Bps, shift=full.shape.hosts_per_leaf)
        assert not analyze_traffic(full, flows).congested

    def test_self_flows_ignored(self):
        tree = FatTree(n_nodes=8, switch_radix=36)
        analysis = analyze_traffic(tree, [(3, 3, 1e9)])
        assert analysis.max_hostlink_load_Bps == 0.0

    def test_negative_rate_rejected(self):
        tree = FatTree(n_nodes=8, switch_radix=36)
        with pytest.raises(ValueError):
            analyze_traffic(tree, [(0, 1, -1.0)])

    def test_uniform_traffic_shape(self):
        flows = uniform_traffic(10, 1e9, np.random.default_rng(0))
        assert len(flows) == 10
        assert all(s != d for s, d, _ in flows)
        with pytest.raises(ValueError):
            uniform_traffic(1, 1e9, np.random.default_rng(0))

    def test_permutation_traffic_validation(self):
        with pytest.raises(ValueError):
            permutation_traffic(1, 1e9)


class TestCommModel:
    def model(self):
        return EDR_DUAL_RAIL()

    def test_ptp_alpha_beta(self):
        m = self.model()
        t_small = m.ptp_time_s(0)
        t_big = m.ptp_time_s(25e9)  # one second of injection
        assert t_small == pytest.approx(m.alpha_s)
        assert t_big == pytest.approx(1.0 + m.alpha_s)

    def test_collectives_zero_for_single_rank(self):
        m = self.model()
        assert m.allreduce_time_s(1e6, 1) == 0.0
        assert m.broadcast_time_s(1e6, 1) == 0.0
        assert m.alltoall_time_s(1e6, 1) == 0.0
        assert m.allgather_time_s(1e6, 1) == 0.0

    def test_allreduce_large_message_bandwidth_bound(self):
        m = self.model()
        n = 32
        t = m.allreduce_time_s(1e9, n)
        bw_term = 2 * (n - 1) / n * 1e9 * m.beta_s_per_B
        assert t == pytest.approx(bw_term, rel=0.05)

    def test_allreduce_small_message_latency_bound(self):
        m = self.model()
        t = m.allreduce_time_s(8, 32)
        assert t == pytest.approx(5 * m.alpha_s, rel=0.01)

    def test_alltoall_scales_linearly_in_ranks(self):
        m = self.model()
        t16 = m.alltoall_time_s(1e6, 16)
        t32 = m.alltoall_time_s(1e6, 32)
        assert t32 / t16 == pytest.approx(31 / 15, rel=0.01)

    def test_halo_exchange_overlaps_latency(self):
        m = self.model()
        t = m.halo_exchange_time_s(1e6, n_neighbors=6)
        assert t == pytest.approx(m.alpha_s + 6e6 * m.beta_s_per_B)
        assert m.halo_exchange_time_s(1e6, 0) == 0.0

    def test_validation(self):
        m = self.model()
        with pytest.raises(ValueError):
            m.ptp_time_s(-1)
        with pytest.raises(ValueError):
            m.allreduce_time_s(1, 0)
        with pytest.raises(ValueError):
            m.halo_exchange_time_s(1, -1)
        with pytest.raises(ValueError):
            CommModel(alpha_s=-1, beta_s_per_B=1)
        with pytest.raises(ValueError):
            EDR_DUAL_RAIL(hops=-1)

    @given(st.integers(min_value=2, max_value=128), st.floats(min_value=1.0, max_value=1e8))
    def test_allreduce_monotone_in_size(self, ranks, nbytes):
        m = self.model()
        assert m.allreduce_time_s(nbytes * 2, ranks) >= m.allreduce_time_s(nbytes, ranks) * 0.99
