"""Tests for job-power feature encoding, regressors and evaluation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.prediction import (
    FeatureEncoder,
    JobPowerModel,
    KnnRegressor,
    PerKeyMeanPredictor,
    RidgeRegressor,
    chronological_split,
    evaluate_model,
    score_predictions,
)
from repro.scheduler import Job, WorkloadConfig, WorkloadGenerator


def job_stream(n=300, seed=0):
    return WorkloadGenerator(WorkloadConfig(n_jobs=n), rng=np.random.default_rng(seed)).generate()


class TestFeatureEncoder:
    def test_fit_required_before_use(self):
        enc = FeatureEncoder()
        with pytest.raises(RuntimeError):
            enc.encode(job_stream(10)[0])
        with pytest.raises(ValueError):
            enc.fit([])

    def test_dimensions_and_names(self):
        jobs = job_stream(50)
        enc = FeatureEncoder().fit(jobs)
        vec = enc.encode(jobs[0])
        assert vec.shape == (enc.n_features,)
        assert len(enc.feature_names()) == enc.n_features
        assert enc.feature_names()[0] == "log_nodes"

    def test_one_hot_blocks(self):
        jobs = job_stream(100)
        enc = FeatureEncoder().fit(jobs)
        vec = enc.encode(jobs[0])
        n_apps = sum(1 for n in enc.feature_names() if n.startswith("app="))
        app_block = vec[4: 4 + n_apps]
        assert app_block.sum() == 1.0

    def test_unknown_category_maps_to_zeros(self):
        jobs = job_stream(50)
        enc = FeatureEncoder().fit(jobs)
        alien = Job(
            job_id=9999, user="stranger", app="mystery", n_nodes=2,
            walltime_req_s=100.0, submit_time_s=0.0,
            true_runtime_s=50.0, true_power_per_node_w=1000.0,
        )
        vec = enc.encode(alien)
        assert vec[4:].sum() == 0.0

    def test_encode_all_shape(self):
        jobs = job_stream(20)
        enc = FeatureEncoder().fit(jobs)
        X = enc.encode_all(jobs)
        assert X.shape == (20, enc.n_features)
        with pytest.raises(ValueError):
            enc.encode_all([])


class TestRidge:
    def test_recovers_linear_relationship(self):
        rng = np.random.default_rng(0)
        X = rng.normal(size=(200, 3))
        y = 2.0 * X[:, 0] - 1.0 * X[:, 1] + 5.0 + rng.normal(0, 0.01, 200)
        model = RidgeRegressor(lam=1e-6).fit(X, y)
        pred = model.predict(X)
        assert np.sqrt(np.mean((pred - y) ** 2)) < 0.05

    def test_regularisation_shrinks_coefficients(self):
        rng = np.random.default_rng(1)
        X = rng.normal(size=(50, 4))
        y = X @ np.array([3.0, -2.0, 1.0, 0.5]) + rng.normal(0, 0.1, 50)
        loose = RidgeRegressor(lam=1e-6).fit(X, y)
        tight = RidgeRegressor(lam=1e3).fit(X, y)
        assert np.linalg.norm(tight.coef_) < np.linalg.norm(loose.coef_)

    def test_validation(self):
        with pytest.raises(ValueError):
            RidgeRegressor(lam=-1.0)
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValueError):
            RidgeRegressor().fit(np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(RuntimeError):
            RidgeRegressor().predict(np.zeros((1, 2)))

    def test_constant_feature_handled(self):
        X = np.ones((10, 2))
        X[:, 1] = np.arange(10)
        y = np.arange(10, dtype=float)
        model = RidgeRegressor(lam=0.1).fit(X, y)
        assert np.all(np.isfinite(model.predict(X)))


class TestKnn:
    def test_exact_neighbor_lookup(self):
        X = np.array([[0.0], [1.0], [2.0], [10.0]])
        y = np.array([0.0, 1.0, 2.0, 10.0])
        model = KnnRegressor(k=1).fit(X, y)
        assert model.predict(np.array([[1.9]]))[0] == pytest.approx(2.0)

    def test_k_larger_than_dataset_clamped(self):
        X = np.array([[0.0], [1.0]])
        y = np.array([0.0, 2.0])
        model = KnnRegressor(k=10).fit(X, y)
        assert 0.0 < model.predict(np.array([[0.5]]))[0] < 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            KnnRegressor(k=0)
        with pytest.raises(RuntimeError):
            KnnRegressor().predict(np.zeros((1, 1)))


class TestPerKeyMean:
    def test_hierarchy_of_fallbacks(self):
        jobs = job_stream(200)
        model = PerKeyMeanPredictor().fit(jobs)
        known = jobs[0]
        assert model.predict_per_node(known) > 0
        # Unknown user, known app -> app mean.
        odd = Job(job_id=1, user="nobody", app=jobs[0].app, n_nodes=1,
                  walltime_req_s=10.0, submit_time_s=0.0,
                  true_runtime_s=5.0, true_power_per_node_w=1.0)
        assert model.predict_per_node(odd) == pytest.approx(model.app_means_[jobs[0].app])
        # Unknown everything -> global mean.
        alien = Job(job_id=2, user="nobody", app="mystery", n_nodes=1,
                    walltime_req_s=10.0, submit_time_s=0.0,
                    true_runtime_s=5.0, true_power_per_node_w=1.0)
        assert model.predict_per_node(alien) == pytest.approx(model.global_mean_)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            PerKeyMeanPredictor().fit([])


class TestEndToEnd:
    def test_trained_models_beat_global_mean(self):
        jobs = job_stream(500, seed=3)
        train, test = chronological_split(jobs, 0.6)
        global_mean = float(np.mean([j.true_power_per_node_w for j in train]))
        baseline = evaluate_model("mean", lambda j: global_mean, test)
        for factory in (JobPowerModel.fit_ridge, JobPowerModel.fit_knn, JobPowerModel.fit_per_key):
            model = factory(train)
            score = evaluate_model(model.kind, model.predict_per_node, test)
            assert score.mape < baseline.mape

    def test_mape_in_cited_band(self):
        # Refs [17][18] report ~5-20% MAPE for submission-time predictors.
        jobs = job_stream(500, seed=4)
        train, test = chronological_split(jobs, 0.6)
        model = JobPowerModel.fit_ridge(train)
        score = evaluate_model("ridge", model.predict_per_node, test)
        assert score.mape < 0.20

    def test_total_power_interface(self):
        jobs = job_stream(100, seed=5)
        model = JobPowerModel.fit_ridge(jobs)
        j = jobs[0]
        assert model(j) == pytest.approx(j.n_nodes * model.predict_per_node(j))

    def test_predictions_clipped_to_physical_range(self):
        jobs = job_stream(100, seed=6)
        model = JobPowerModel.fit_ridge(jobs)
        extreme = Job(job_id=0, user=jobs[0].user, app=jobs[0].app, n_nodes=16,
                      walltime_req_s=86400.0, submit_time_s=0.0, threads_per_rank=8,
                      true_runtime_s=3600.0, true_power_per_node_w=1500.0)
        assert 300.0 <= model.predict_per_node(extreme) <= 2200.0


class TestEvaluation:
    def test_score_fields(self):
        s = score_predictions("x", np.array([110.0, 90.0]), np.array([100.0, 100.0]))
        assert s.mape == pytest.approx(0.1)
        assert s.bias_w == pytest.approx(0.0)
        assert s.underprediction_rate == pytest.approx(0.5)
        assert s.rmse_w == pytest.approx(10.0)

    def test_score_validation(self):
        with pytest.raises(ValueError):
            score_predictions("x", np.array([1.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            score_predictions("x", np.array([]), np.array([]))
        with pytest.raises(ValueError):
            score_predictions("x", np.array([1.0]), np.array([0.0]))

    def test_chronological_split_ordering(self):
        jobs = job_stream(100, seed=7)
        train, test = chronological_split(jobs, 0.7)
        assert len(train) + len(test) == 100
        assert max(j.submit_time_s for j in train) <= min(j.submit_time_s for j in test)

    def test_split_validation(self):
        jobs = job_stream(10)
        with pytest.raises(ValueError):
            chronological_split(jobs, 0.0)
        with pytest.raises(ValueError):
            chronological_split(jobs[:2], 0.5)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_split_fraction_respected(self, frac):
        jobs = job_stream(100, seed=8)
        train, test = chronological_split(jobs, frac)
        assert len(train) == pytest.approx(100 * frac, abs=1.001)
        assert len(test) >= 1
