"""Tests for FIFO, EASY backfill and the power-aware dispatcher."""

import numpy as np
import pytest

from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    FifoScheduler,
    Job,
    PowerAwareScheduler,
    WorkloadConfig,
    WorkloadGenerator,
    request_based_predictor,
)


def job(jid, nodes, runtime, submit=0.0, walltime=None, power=1500.0, app="qe"):
    return Job(
        job_id=jid, user=f"user{jid % 3}", app=app, n_nodes=nodes,
        walltime_req_s=walltime if walltime is not None else runtime * 1.5,
        submit_time_s=submit, true_runtime_s=runtime, true_power_per_node_w=power,
    )


def oracle_predictor(j):
    return j.true_power_w


class TestSimulatorBasics:
    def test_single_job_runs_to_completion(self):
        sim = ClusterSimulator(n_nodes=4, policy=FifoScheduler())
        result = sim.run([job(0, 2, 100.0)])
        [rec] = result.records
        assert rec.start_time_s == 0.0
        assert rec.end_time_s == pytest.approx(100.0)
        assert result.makespan_s == pytest.approx(100.0)

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            ClusterSimulator(4, FifoScheduler()).run([])

    def test_energy_accounting(self):
        sim = ClusterSimulator(n_nodes=2, policy=FifoScheduler(), idle_node_power_w=300.0)
        result = sim.run([job(0, 2, 100.0, power=1500.0)])
        # 2 nodes x 1500 W x 100 s.
        assert result.records[0].energy_j == pytest.approx(300e3)
        assert result.total_energy_j == pytest.approx(300e3)

    def test_idle_power_in_trace(self):
        sim = ClusterSimulator(n_nodes=4, policy=FifoScheduler(), idle_node_power_w=300.0)
        result = sim.run([job(0, 2, 100.0, power=1500.0, submit=0.0)])
        # While running: 2x1500 + 2x300 idle nodes = 3600 W.
        assert result.peak_power_w() == pytest.approx(3600.0)

    def test_utilization(self):
        sim = ClusterSimulator(n_nodes=4, policy=FifoScheduler())
        result = sim.run([job(0, 4, 100.0)])
        assert result.utilization == pytest.approx(1.0)

    def test_oversized_job_stalls_cleanly(self):
        sim = ClusterSimulator(n_nodes=2, policy=FifoScheduler())
        with pytest.raises(RuntimeError, match="stalled"):
            sim.run([job(0, 5, 100.0)])


class TestFifoVsBackfill:
    def make_stream(self):
        # Job 0 leaves one node free; the full-machine job 1 blocks behind
        # it, and a short job 2 can backfill onto the free node because it
        # finishes (by its requested walltime) before job 1's reservation.
        return [
            job(0, 3, 1000.0, submit=0.0),
            job(1, 4, 1000.0, submit=1.0),    # blocked head successor
            job(2, 1, 100.0, submit=2.0, walltime=150.0),  # backfill candidate
        ]

    def test_fifo_makes_small_job_wait(self):
        result = ClusterSimulator(4, FifoScheduler()).run(self.make_stream())
        rec2 = result.records[2]
        assert rec2.start_time_s >= 2000.0  # waits for both big jobs

    def test_backfill_starts_small_job_early(self):
        result = ClusterSimulator(4, EasyBackfillScheduler()).run(self.make_stream())
        rec2 = result.records[2]
        assert rec2.start_time_s < 1000.0  # jumped the queue

    def test_backfill_does_not_delay_head_job(self):
        fifo = ClusterSimulator(4, FifoScheduler()).run(self.make_stream())
        easy = ClusterSimulator(4, EasyBackfillScheduler()).run(self.make_stream())
        assert easy.records[1].start_time_s <= fifo.records[1].start_time_s + 1e-9

    def test_backfill_improves_mean_wait_on_realistic_stream(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=120, load_factor=1.1), rng=np.random.default_rng(0)
        ).generate()
        fifo = ClusterSimulator(45, FifoScheduler()).run(jobs)
        easy = ClusterSimulator(45, EasyBackfillScheduler()).run(jobs)
        assert easy.mean_wait_s() <= fifo.mean_wait_s()
        assert easy.utilization >= fifo.utilization - 1e-9


class TestPowerAwareScheduler:
    def test_validation(self):
        with pytest.raises(ValueError):
            PowerAwareScheduler(power_budget_w=0.0)
        with pytest.raises(ValueError):
            PowerAwareScheduler(1000.0, headroom_margin=1.0)
        with pytest.raises(ValueError):
            request_based_predictor(0.0)

    def test_admission_respects_budget_with_oracle(self):
        # 4 nodes, budget fits 2 busy + 2 idle: 2x1500 + 2x300 = 3600.
        policy = PowerAwareScheduler(3700.0, predictor=oracle_predictor, idle_node_power_w=300.0)
        sim = ClusterSimulator(4, policy, idle_node_power_w=300.0)
        stream = [job(i, 1, 500.0, submit=0.0, power=1500.0) for i in range(4)]
        result = sim.run(stream)
        # Never more than 2 jobs at once -> peak power under budget.
        assert result.peak_power_w() <= 3700.0 + 1e-6
        # But all 4 complete eventually.
        assert all(r.end_time_s is not None for r in result.records)

    def test_uncapped_budget_equals_backfill(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=80, load_factor=0.9), rng=np.random.default_rng(1)
        ).generate()
        budgetless = PowerAwareScheduler(1e9, predictor=oracle_predictor)
        pw = ClusterSimulator(45, budgetless).run(jobs)
        easy = ClusterSimulator(45, EasyBackfillScheduler()).run(jobs)
        assert pw.mean_wait_s() == pytest.approx(easy.mean_wait_s(), rel=0.01)

    def test_proactive_keeps_power_under_budget(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=100, load_factor=1.2), rng=np.random.default_rng(2)
        ).generate()
        budget = 55e3
        policy = PowerAwareScheduler(budget, predictor=oracle_predictor)
        result = ClusterSimulator(45, policy).run(jobs)
        # Oracle predictions -> essentially no budget excursions.
        t, p = result.power_trace.times_s, result.power_trace.power_w
        dt = np.diff(t)
        over_time = dt[p[:-1] > budget * 1.0001].sum()
        assert over_time / result.makespan_s < 0.01

    def test_proactive_avoids_runtime_stretch_reactive_does_not(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=100, load_factor=1.2), rng=np.random.default_rng(3)
        ).generate()
        budget = 50e3
        proactive = ClusterSimulator(
            45, PowerAwareScheduler(budget, predictor=oracle_predictor)
        ).run(jobs)
        reactive = ClusterSimulator(
            45, EasyBackfillScheduler(), reactive_cap_w=budget
        ).run(jobs)
        assert proactive.mean_stretch() == pytest.approx(1.0)
        assert reactive.mean_stretch() > 1.05

    def test_naive_predictor_more_conservative_than_oracle(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=100, load_factor=1.2), rng=np.random.default_rng(4)
        ).generate()
        budget = 55e3
        oracle = ClusterSimulator(
            45, PowerAwareScheduler(budget, predictor=oracle_predictor)
        ).run(jobs)
        naive = ClusterSimulator(
            45, PowerAwareScheduler(budget, predictor=request_based_predictor(2000.0))
        ).run(jobs)
        # Nameplate predictions waste budget -> longer waits.
        assert naive.mean_wait_s() >= oracle.mean_wait_s()

    def test_headroom_accessor(self):
        from repro.scheduler import SchedulerContext

        policy = PowerAwareScheduler(10e3, predictor=oracle_predictor, idle_node_power_w=300.0,
                                     headroom_margin=0.0)
        ctx = SchedulerContext(now_s=0.0, free_nodes=(0, 1, 2, 3), running=(),
                               total_nodes=4, system_power_w=1200.0)
        assert policy.power_headroom_w(ctx) == pytest.approx(10e3 - 4 * 300.0)


class TestReactiveCapping:
    def test_reactive_cap_trims_power_and_stretches_runtime(self):
        stream = [job(i, 1, 100.0, submit=0.0, power=1900.0) for i in range(4)]
        uncapped = ClusterSimulator(4, FifoScheduler(), idle_node_power_w=300.0).run(stream)
        capped = ClusterSimulator(
            4, FifoScheduler(), idle_node_power_w=300.0, reactive_cap_w=5000.0
        ).run(stream)
        assert uncapped.peak_power_w() == pytest.approx(4 * 1900.0)
        assert capped.peak_power_w() <= 5000.0 + 1e-6
        assert capped.makespan_s > uncapped.makespan_s
        assert capped.mean_stretch() > 1.0

    def test_cap_violation_fraction_zero_when_within_floor(self):
        stream = [job(0, 1, 100.0, power=1000.0)]
        capped = ClusterSimulator(2, FifoScheduler(), reactive_cap_w=50e3).run(stream)
        assert capped.cap_violation_fraction() == 0.0
        assert capped.overdemand_s == 0.0

    def test_speed_floor_limits_trim(self):
        # A cap below the controllable floor cannot be met.
        stream = [job(0, 2, 100.0, power=1900.0)]
        sim = ClusterSimulator(2, FifoScheduler(), idle_node_power_w=300.0,
                               reactive_cap_w=700.0, min_speed=0.5)
        result = sim.run(stream)
        assert result.cap_violation_fraction() > 0.9
        assert result.records[0].stretch <= 2.0 + 1e-9

    def test_invalid_simulator_args(self):
        with pytest.raises(ValueError):
            ClusterSimulator(0, FifoScheduler())
        with pytest.raises(ValueError):
            ClusterSimulator(4, FifoScheduler(), reactive_cap_w=0.0)
        with pytest.raises(ValueError):
            ClusterSimulator(4, FifoScheduler(), min_speed=0.0)
