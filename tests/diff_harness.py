"""Differential harness pinning the three simulator cores to one contract.

The repo ships three interchangeable ``ClusterSimulator`` backends —
``reference`` (O(n) tick loop), ``calendar`` (event calendar) and
``array`` (structure-of-arrays, vectorized) — that must be
*float-identical*: every record field, every trace sample, every QoS
metric, every digest.  This module generates seeded random scenarios
across the dimensions that have historically diverged cores (policy x
cap schedule x outage pattern x workload shape), runs each scenario
through all cores, and compares field by field.

Use it three ways:

* as a library: ``assert_equivalent(seed)`` from any test;
* pytest: ``tests/test_array_equivalence.py`` parametrizes over seeds;
* CLI (CI smoke): ``python tests/diff_harness.py --scenarios 50``
  or reproduce one failure with ``python tests/diff_harness.py --seed N``.

**Cap-heavy mode** (``--cap-heavy N`` / ``--cap-heavy-seed N``) draws
from a sampler biased to where the epoch-settled trim path actually
runs: every scenario capped at 40–65 % of nameplate (rho binds and
moves on nearly every event), oversubscribed backlogs, step caps via
the time-varying policy, and outage/requeue interleavings.

**Cache mode** pins the content-addressed campaign cache the same way
the core sweep pins the simulator backends: every seeded random
campaign grid runs cold (no cache), then against a cache being seeded,
then warm (must simulate zero cells), then killed after a random number
of completed cells and resumed from its checkpoint — and every pair of
runs must agree field by field: per-cell digests, QoS dicts, full
record/trace payloads (through the on-disk JSON/NPZ round-trip on odd
seeds), and the campaign digest.

* library: ``assert_cache_equivalent(seed)`` from any test;
* pytest: ``tests/test_campaign_cache.py`` parametrizes over seeds;
* CLI (CI smoke): ``python tests/diff_harness.py --cache 50``, one
  failure reproduced with ``--cache-seed N``; ``--bench-grids`` warms a
  cache with the full E07b/E08a/E09a bench campaign grids and proves a
  warm rerun simulates 0 cells.
"""

from __future__ import annotations

import argparse
import importlib.util
import math
import os
import random
import sys
import tempfile
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # let `python tests/diff_harness.py` work bare
    sys.path.insert(0, _SRC)

import dataclasses

from repro.scheduler.cache import (
    CampaignCheckpoint,
    DirectoryResultStore,
    MemoryResultStore,
)
from repro.scheduler.campaign import (
    CampaignConfig,
    Scenario,
    ScenarioResult,
    campaign_digest,
    result_digest,
    resume_campaign,
    run_campaign,
)
from repro.scheduler.job import Job
from repro.scheduler.policies import EasyBackfillScheduler, FifoScheduler
from repro.scheduler.power_aware import PowerAwareScheduler, request_based_predictor
from repro.scheduler.simulate import ClusterSimulator, NodeOutage, SimulationResult
from repro.scheduler.thermal_aware import TimeVaryingBudgetScheduler, day_night_budget
from repro.scheduler.workload import WorkloadConfig, WorkloadGenerator

CORES = ("reference", "calendar", "array")

#: Per-node power budget used to scale caps to cluster size (matches the
#: D.A.V.I.D.E. bench settings: ~1150 W/node of rack budget).
BUDGET_PER_NODE_W = 1150.0

_RECORD_FIELDS = (
    "state",
    "start_time_s",
    "end_time_s",
    "nodes",
    "energy_j",
    "elapsed_running_s",
    "work_progressed_s",
    "stretch",
    "requeues",
)

_RESULT_FIELDS = (
    "makespan_s",
    "total_energy_j",
    "cap_w",
    "overdemand_s",
    "utilization",
    "n_requeues",
)

_QOS_METRICS = (
    "mean_wait_s",
    "p95_wait_s",
    "mean_bounded_slowdown",
    "mean_stretch",
    "mean_power_w",
)


@dataclass(frozen=True)
class HarnessScenario:
    """One random draw from the scenario space (reconstructible from seed)."""

    seed: int
    label: str
    n_nodes: int
    n_jobs: int
    load_factor: float
    policy_kind: str  # fifo | easy | power-aware | time-varying
    cap_w: Optional[float]
    outages: tuple[NodeOutage, ...] = ()

    repro_hint = "--seed"

    def build_policy(self):
        """A fresh policy instance (stateful policies must not be shared)."""
        if self.policy_kind == "fifo":
            return FifoScheduler()
        if self.policy_kind == "easy":
            return EasyBackfillScheduler()
        if self.policy_kind == "power-aware":
            assert self.cap_w is not None
            return PowerAwareScheduler(
                cap_w=self.cap_w,
                predictor=request_based_predictor(2 * BUDGET_PER_NODE_W),
            )
        if self.policy_kind == "time-varying":
            assert self.cap_w is not None
            return TimeVaryingBudgetScheduler(
                day_night_budget(self.cap_w, 0.8 * self.cap_w),
            )
        raise ValueError(f"unknown policy kind {self.policy_kind!r}")

    def build_jobs(self) -> list[Job]:
        config = WorkloadConfig(
            n_jobs=self.n_jobs,
            n_users=4,
            cluster_nodes=self.n_nodes,
            load_factor=self.load_factor,
        )
        gen = WorkloadGenerator(config, rng=np.random.default_rng(self.seed))
        return gen.generate()


def random_scenario(seed: int) -> HarnessScenario:
    """Deterministically expand ``seed`` into one scenario.

    Dimensions: cluster size (4–64 nodes), workload shape (20–120 jobs,
    light to oversubscribed), policy (FIFO / EASY / power-aware /
    time-varying budget), cap schedule (uncapped, or 55–90 % of the
    nameplate budget), and outage pattern (none, or 1–4 crash/repair
    cycles inside the busy window).  Tiny clusters + heavy caps maximize
    event collisions — the regime where core divergence hides.
    """
    rng = random.Random(seed)
    n_nodes = rng.choice((4, 8, 16, 24, 32, 64))
    n_jobs = rng.randrange(20, 121)
    load_factor = rng.choice((0.5, 0.9, 1.3))
    policy_kind = rng.choice(("fifo", "easy", "easy", "power-aware", "time-varying"))

    if policy_kind in ("power-aware", "time-varying"):
        cap_fraction: Optional[float] = rng.choice((0.55, 0.7, 0.9))
    else:
        cap_fraction = rng.choice((None, 0.55, 0.7, 0.9))
    cap_w = None if cap_fraction is None else cap_fraction * n_nodes * BUDGET_PER_NODE_W

    outages: list[NodeOutage] = []
    if rng.random() < 0.5:
        # Crash inside the first few workload hours, where jobs run.
        for _ in range(rng.randrange(1, 5)):
            outages.append(
                NodeOutage(
                    at_s=rng.uniform(100.0, 20_000.0),
                    node_id=rng.randrange(n_nodes),
                    duration_s=rng.uniform(300.0, 10_000.0),
                )
            )
    label = (
        f"{policy_kind}/n{n_nodes}/j{n_jobs}/load{load_factor}"
        f"/cap{cap_fraction}/out{len(outages)}"
    )
    return HarnessScenario(
        seed=seed,
        label=label,
        n_nodes=n_nodes,
        n_jobs=n_jobs,
        load_factor=load_factor,
        policy_kind=policy_kind,
        cap_w=cap_w,
        outages=tuple(outages),
    )


@dataclass(frozen=True)
class CapHeavyScenario(HarnessScenario):
    """A :class:`HarnessScenario` drawn from the cap-heavy sampler."""

    repro_hint = "--cap-heavy-seed"


def cap_heavy_scenario(seed: int) -> CapHeavyScenario:
    """Deterministically expand ``seed`` into a cap-stressing scenario.

    Every draw is capped, and capped *tight*: 40–65 % of the nameplate
    budget, so rho binds essentially the whole run and moves on nearly
    every start/completion — the regime the epoch-settled trim path
    (DESIGN.md §14) rewrites.  Oversubscribed workloads keep a deep
    backlog (many same-timestamp decision cascades), the time-varying
    policy adds *step* caps on top (rho jumps at budget edges, not just
    at job events), and occasional outages interleave requeue flushes
    with pending accounting epochs.  Uncapped/loose-cap coverage stays
    with :func:`random_scenario`; this sampler exists to fuzz the trim
    machinery where it actually runs.
    """
    rng = random.Random(0xCA9 ^ (seed * 0x9E3779B1))
    n_nodes = rng.choice((4, 8, 16, 24, 32))
    n_jobs = rng.randrange(40, 161)
    load_factor = rng.choice((0.9, 1.3, 1.3))
    policy_kind = rng.choice(
        ("easy", "easy", "fifo", "power-aware", "time-varying", "time-varying")
    )
    cap_fraction = rng.choice((0.4, 0.45, 0.5, 0.55, 0.65))
    cap_w = cap_fraction * n_nodes * BUDGET_PER_NODE_W

    outages: list[NodeOutage] = []
    if rng.random() < 0.4:
        for _ in range(rng.randrange(1, 4)):
            outages.append(
                NodeOutage(
                    at_s=rng.uniform(100.0, 20_000.0),
                    node_id=rng.randrange(n_nodes),
                    duration_s=rng.uniform(300.0, 10_000.0),
                )
            )
    label = (
        f"cap-heavy/{policy_kind}/n{n_nodes}/j{n_jobs}/load{load_factor}"
        f"/cap{cap_fraction}/out{len(outages)}"
    )
    return CapHeavyScenario(
        seed=seed,
        label=label,
        n_nodes=n_nodes,
        n_jobs=n_jobs,
        load_factor=load_factor,
        policy_kind=policy_kind,
        cap_w=cap_w,
        outages=tuple(outages),
    )


def run_core(scenario: HarnessScenario, core: str) -> SimulationResult:
    """Run ``scenario`` on one simulator core (fresh policy + workload)."""
    sim = ClusterSimulator(
        n_nodes=scenario.n_nodes,
        policy=scenario.build_policy(),
        cap_w=scenario.cap_w,
        node_outages=scenario.outages,
        core=core,
    )
    return sim.run(scenario.build_jobs())


def _fail(scenario, detail: str) -> None:
    hint = getattr(scenario, "repro_hint", "--seed")
    raise AssertionError(
        f"divergence in scenario {scenario.label} (seed {scenario.seed}): "
        f"{detail}\nreproduce with: python tests/diff_harness.py {hint} {scenario.seed}"
    )


def compare_results(
    scenario: HarnessScenario,
    base: SimulationResult,
    base_core: str,
    other: SimulationResult,
    other_core: str,
) -> None:
    """Field-by-field equality of two results (exact, no tolerances)."""
    pair = f"{base_core} vs {other_core}"
    if len(base.records) != len(other.records):
        _fail(scenario, f"{pair}: record counts {len(base.records)} != {len(other.records)}")
    for ra, rb in zip(base.records, other.records):
        if ra.job.job_id != rb.job.job_id:
            _fail(scenario, f"{pair}: record order {ra.job.job_id} != {rb.job.job_id}")
        for name in _RECORD_FIELDS:
            va, vb = getattr(ra, name), getattr(rb, name)
            if va != vb:
                _fail(
                    scenario,
                    f"{pair}: job {ra.job.job_id} field {name}: {va!r} != {vb!r}",
                )
    for name in _RESULT_FIELDS:
        va, vb = getattr(base, name), getattr(other, name)
        if va != vb:
            _fail(scenario, f"{pair}: result field {name}: {va!r} != {vb!r}")
    ta, tb = base.power_trace, other.power_trace
    if not (
        np.array_equal(ta.times_s, tb.times_s)
        and np.array_equal(ta.power_w, tb.power_w)
    ):
        _fail(scenario, f"{pair}: power traces differ")
    for name in _QOS_METRICS:
        va, vb = getattr(base, name)(), getattr(other, name)()
        if va != vb and not (np.isnan(va) and np.isnan(vb)):
            _fail(scenario, f"{pair}: QoS metric {name}: {va!r} != {vb!r}")
    da, db = result_digest(base), result_digest(other)
    if da != db:
        _fail(scenario, f"{pair}: digests {da[:16]}… != {db[:16]}…")


def assert_equivalent(
    seed: int, cores: Sequence[str] = CORES, sampler=random_scenario,
) -> HarnessScenario:
    """Run one seeded scenario through ``cores`` and demand equality."""
    scenario = sampler(seed)
    base_core = cores[0]
    base = run_core(scenario, base_core)
    for core in cores[1:]:
        compare_results(scenario, base, base_core, run_core(scenario, core), core)
    return scenario


def assert_cap_heavy_equivalent(
    seed: int, cores: Sequence[str] = CORES,
) -> HarnessScenario:
    """Cap-heavy variant of :func:`assert_equivalent` (tight caps only)."""
    return assert_equivalent(seed, cores, sampler=cap_heavy_scenario)


# --------------------------------------------------------------------------
# cache mode: cold vs warm vs kill-and-resume campaigns
# --------------------------------------------------------------------------

_CACHE_POLICIES = ("fifo", "easy", "power-aware")


@dataclass(frozen=True)
class CacheScenario:
    """One random campaign grid draw (reconstructible from its seed)."""

    seed: int
    label: str
    config: CampaignConfig
    grid: tuple[Scenario, ...]
    kill_after: int
    #: On-disk store/checkpoint on odd seeds, in-memory on even —
    #: alternating exercises both backends across any sweep.
    on_disk: bool

    repro_hint = "--cache-seed"


def random_campaign(seed: int) -> CacheScenario:
    """Deterministically expand ``seed`` into one campaign grid.

    Dimensions: machine shape (4–16 nodes, 12–36 jobs, light to
    oversubscribed), 3–8 cells across policy × cap × seed-index ×
    outage (up to three outages per cell), occasional pinned cores and
    labels — and, with probability ~1/2 each, one *default-equivalent
    respelling* of an earlier cell (budget written out vs inherited
    from the cap, ``core="array"`` vs the default) and one
    *reordered-outage twin* (the same outage set listed in a different
    order) so within-grid dedup is exercised under content addressing:
    both twins must replay their donor's cell, and their independent
    cold simulations must be byte-identical to it.
    """
    rng = random.Random(0xCAC4E ^ (seed * 0x9E3779B1))
    config = CampaignConfig(
        n_nodes=rng.choice((4, 8, 16)),
        n_jobs=rng.randrange(12, 37),
        root_seed=seed,
        load_factor=rng.choice((0.5, 0.9, 1.3)),
    )
    budget = config.n_nodes * BUDGET_PER_NODE_W
    grid: list[Scenario] = []
    for i in range(rng.randrange(3, 9)):
        policy = rng.choice(_CACHE_POLICIES)
        cap_fraction = rng.choice((0.6, 0.8, None))
        if policy == "power-aware" and cap_fraction is None:
            cap_fraction = 0.7
        cap_w = None if cap_fraction is None else cap_fraction * budget
        outages: tuple[NodeOutage, ...] = ()
        if rng.random() < 0.3:
            outages = tuple(
                NodeOutage(
                    at_s=rng.uniform(100.0, 10_000.0),
                    node_id=rng.randrange(config.n_nodes),
                    duration_s=rng.uniform(300.0, 5_000.0),
                )
                for _ in range(rng.randrange(1, 4))
            )
        grid.append(Scenario(
            policy=policy,
            cap_w=cap_w,
            seed_index=rng.randrange(3),
            node_outages=outages,
            core=rng.choice((None, None, "array", "calendar")),
            label=f"cell{i}" if rng.random() < 0.5 else "",
        ))
    if rng.random() < 0.5:
        # Respell one cell: identical content, different spelling.
        donor = rng.choice(grid)
        grid.append(dataclasses.replace(
            donor,
            budget_w=(donor.cap_w if donor.policy == "power-aware"
                      and donor.budget_w is None else donor.budget_w),
            core=donor.core if donor.core is not None else "array",
            label="respelled",
        ))
    multi_outage = [s for s in grid if len(s.node_outages) >= 2]
    if multi_outage and rng.random() < 0.5:
        # Reordered-outage twin: the same outage set, permuted.  Content
        # addressing must collapse it onto its donor (outage listing
        # order is spelling, not semantics — the simulator sorts).
        donor = rng.choice(multi_outage)
        grid.append(dataclasses.replace(
            donor,
            node_outages=tuple(reversed(donor.node_outages)),
            label="reordered-outages",
        ))
    kill_after = rng.randrange(1, len(grid))
    label = (f"grid/n{config.n_nodes}/j{config.n_jobs}"
             f"/cells{len(grid)}/kill{kill_after}")
    return CacheScenario(
        seed=seed,
        label=label,
        config=config,
        grid=tuple(grid),
        kill_after=kill_after,
        on_disk=bool(seed % 2),
    )


def compare_cells(
    scenario,
    base: Sequence[ScenarioResult],
    base_name: str,
    other: Sequence[ScenarioResult],
    other_name: str,
) -> None:
    """Field-by-field equality of two campaign result lists (exact)."""
    pair = f"{base_name} vs {other_name}"
    if len(base) != len(other):
        _fail(scenario, f"{pair}: cell counts {len(base)} != {len(other)}")
    for i, (a, b) in enumerate(zip(base, other)):
        if a.scenario != b.scenario:
            _fail(scenario, f"{pair}: cell {i} scenario {a.scenario!r} != {b.scenario!r}")
        if a.digest != b.digest:
            _fail(scenario, f"{pair}: cell {i} digests {a.digest[:16]}… != {b.digest[:16]}…")
        if set(a.qos) != set(b.qos):
            _fail(scenario, f"{pair}: cell {i} QoS keys differ")
        for name, va in a.qos.items():
            vb = b.qos[name]
            if va != vb and not (
                isinstance(va, float) and isinstance(vb, float)
                and math.isnan(va) and math.isnan(vb)
            ):
                _fail(scenario, f"{pair}: cell {i} QoS {name}: {va!r} != {vb!r}")
        if (a.result is None) != (b.result is None):
            _fail(scenario, f"{pair}: cell {i} payload presence differs")
        if a.result is not None and b.result is not None:
            compare_results(scenario, a.result, f"{base_name}[{i}]",
                            b.result, f"{other_name}[{i}]")
    da, db = campaign_digest(base), campaign_digest(other)
    if da != db:
        _fail(scenario, f"{pair}: campaign digests {da[:16]}… != {db[:16]}…")


class _KillSwitch(Exception):
    """Raised by the harness to kill a campaign mid-run."""


def assert_cache_equivalent(seed: int, processes: int = 1) -> CacheScenario:
    """Cold vs warm vs kill-and-resume equality for one seeded grid."""
    scenario = random_campaign(seed)
    config, grid = scenario.config, list(scenario.grid)

    cold = run_campaign(config, grid, processes=processes, keep_results=True)

    with tempfile.TemporaryDirectory(prefix="diff-harness-cache-") as tmp:
        store = (DirectoryResultStore(os.path.join(tmp, "store"))
                 if scenario.on_disk else MemoryResultStore())

        # Pass 1 seeds the store; results must equal the cache-less run.
        flags: list[bool] = []
        seeding = run_campaign(
            config, grid, processes=processes, keep_results=True,
            cache=store, on_result=lambda cell, replayed: flags.append(replayed),
        )
        compare_cells(scenario, cold, "cold", seeding, "seeding")

        # Pass 2 is warm: zero simulations, byte-identical replays (the
        # on-disk backend re-materializes every record from JSON+NPZ).
        flags.clear()
        warm = run_campaign(
            config, grid, processes=processes, keep_results=True,
            cache=store, on_result=lambda cell, replayed: flags.append(replayed),
        )
        if not all(flags):
            _fail(scenario, f"warm run simulated {flags.count(False)} cells (want 0)")
        compare_cells(scenario, cold, "cold", warm, "warm")

        # Kill after `kill_after` completed cells, then resume: the
        # stitched run must reproduce the uninterrupted digest exactly.
        checkpoint = CampaignCheckpoint(os.path.join(tmp, "checkpoint"))
        completed: list[ScenarioResult] = []

        def killer(cell: ScenarioResult, replayed: bool) -> None:
            completed.append(cell)
            if len(completed) >= scenario.kill_after:
                raise _KillSwitch

        try:
            run_campaign(config, grid, processes=processes,
                         keep_results=True, checkpoint=checkpoint, on_result=killer)
        except _KillSwitch:
            pass
        else:
            _fail(scenario, "kill switch never fired")
        if len(checkpoint) < 1:
            _fail(scenario, "killed run checkpointed no cells")
        resumed = resume_campaign(config, grid, checkpoint,
                                  processes=processes, keep_results=True)
        compare_cells(scenario, cold, "cold", resumed, "resumed")
    return scenario


_BENCH_GRIDS = (
    ("E07b", "bench_e07_power_capping"),
    ("E08a", "bench_e08_power_prediction"),
    ("E09a", "bench_e09_fig4_pipeline"),
)


def check_bench_grids() -> None:
    """Warm rerun of the full E07b/E08a/E09a grids must simulate 0 cells."""
    bench_dir = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "benchmarks")
    for name, module_name in _BENCH_GRIDS:
        path = os.path.join(bench_dir, f"{module_name}.py")
        spec = importlib.util.spec_from_file_location(module_name, path)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        config, grid = module.campaign_grid()

        store = MemoryResultStore()
        cold = run_campaign(config, grid, cache=store)
        flags: list[bool] = []
        warm = run_campaign(config, grid, cache=store,
                            on_result=lambda cell, replayed: flags.append(replayed))
        simulated = flags.count(False)
        assert simulated == 0, (
            f"{name}: warm rerun simulated {simulated} of {len(grid)} cells")
        assert campaign_digest(cold) == campaign_digest(warm), (
            f"{name}: warm campaign digest diverged from cold")
        print(f"{name}: {len(grid)} cells, warm rerun simulated 0  "
              f"(digest {campaign_digest(warm)[:16]}…)")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, help="run exactly this scenario seed")
    parser.add_argument(
        "--scenarios", type=int, default=50,
        help="number of seeded scenarios to sweep (default 50)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--cores", default=",".join(CORES),
        help="comma-separated core list (default all three)",
    )
    parser.add_argument(
        "--cap-heavy", type=int, default=0, metavar="N",
        help="sweep N seeds through the cap-heavy sampler (tight binding "
             "caps, step caps, frequent rho moves) instead of the "
             "general scenario space",
    )
    parser.add_argument(
        "--cap-heavy-seed", type=int,
        help="run exactly this cap-heavy scenario seed",
    )
    parser.add_argument(
        "--cache", type=int, default=0, metavar="N",
        help="cache mode: sweep N seeded campaign grids through "
             "cold/warm/kill-and-resume equality (skips the core sweep)",
    )
    parser.add_argument(
        "--cache-seed", type=int,
        help="cache mode: run exactly this campaign-grid seed",
    )
    parser.add_argument(
        "--bench-grids", action="store_true",
        help="prove a warm rerun of the full E07b/E08a/E09a bench "
             "campaign grids simulates 0 cells",
    )
    args = parser.parse_args(argv)
    cache_mode = args.cache > 0 or args.cache_seed is not None or args.bench_grids
    if cache_mode:
        cache_seeds = (
            [args.cache_seed] if args.cache_seed is not None
            else list(range(args.base_seed, args.base_seed + args.cache))
        )
        for seed in cache_seeds:
            scenario = assert_cache_equivalent(seed)
            backend = "disk" if scenario.on_disk else "memory"
            print(f"cache seed {seed:>5}  OK  {scenario.label} [{backend}]")
        if cache_seeds:
            print(f"{len(cache_seeds)} campaign grids: cold, warm and "
                  "kill-and-resume all byte-identical")
        if args.bench_grids:
            check_bench_grids()
        return 0
    cores = tuple(args.cores.split(","))
    if args.cap_heavy > 0 or args.cap_heavy_seed is not None:
        seeds = (
            [args.cap_heavy_seed] if args.cap_heavy_seed is not None
            else list(range(args.base_seed, args.base_seed + args.cap_heavy))
        )
        for seed in seeds:
            scenario = assert_cap_heavy_equivalent(seed, cores)
            print(f"seed {seed:>5}  OK  {scenario.label}")
        print(f"{len(seeds)} cap-heavy scenarios, {len(cores)} cores: "
              "all equivalent")
        return 0
    seeds = [args.seed] if args.seed is not None else list(
        range(args.base_seed, args.base_seed + args.scenarios)
    )
    for seed in seeds:
        scenario = assert_equivalent(seed, cores)
        print(f"seed {seed:>5}  OK  {scenario.label}")
    print(f"{len(seeds)} scenarios, {len(cores)} cores: all equivalent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
