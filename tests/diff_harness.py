"""Differential harness pinning the three simulator cores to one contract.

The repo ships three interchangeable ``ClusterSimulator`` backends —
``reference`` (O(n) tick loop), ``calendar`` (event calendar) and
``array`` (structure-of-arrays, vectorized) — that must be
*float-identical*: every record field, every trace sample, every QoS
metric, every digest.  This module generates seeded random scenarios
across the dimensions that have historically diverged cores (policy x
cap schedule x outage pattern x workload shape), runs each scenario
through all cores, and compares field by field.

Use it three ways:

* as a library: ``assert_equivalent(seed)`` from any test;
* pytest: ``tests/test_array_equivalence.py`` parametrizes over seeds;
* CLI (CI smoke): ``python tests/diff_harness.py --scenarios 50``
  or reproduce one failure with ``python tests/diff_harness.py --seed N``.
"""

from __future__ import annotations

import argparse
import os
import random
import sys
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:  # let `python tests/diff_harness.py` work bare
    sys.path.insert(0, _SRC)

from repro.scheduler.campaign import result_digest
from repro.scheduler.job import Job
from repro.scheduler.policies import EasyBackfillScheduler, FifoScheduler
from repro.scheduler.power_aware import PowerAwareScheduler, request_based_predictor
from repro.scheduler.simulate import ClusterSimulator, NodeOutage, SimulationResult
from repro.scheduler.thermal_aware import TimeVaryingBudgetScheduler, day_night_budget
from repro.scheduler.workload import WorkloadConfig, WorkloadGenerator

CORES = ("reference", "calendar", "array")

#: Per-node power budget used to scale caps to cluster size (matches the
#: D.A.V.I.D.E. bench settings: ~1150 W/node of rack budget).
BUDGET_PER_NODE_W = 1150.0

_RECORD_FIELDS = (
    "state",
    "start_time_s",
    "end_time_s",
    "nodes",
    "energy_j",
    "elapsed_running_s",
    "work_progressed_s",
    "stretch",
    "requeues",
)

_RESULT_FIELDS = (
    "makespan_s",
    "total_energy_j",
    "cap_w",
    "overdemand_s",
    "utilization",
    "n_requeues",
)

_QOS_METRICS = (
    "mean_wait_s",
    "p95_wait_s",
    "mean_bounded_slowdown",
    "mean_stretch",
    "mean_power_w",
)


@dataclass(frozen=True)
class HarnessScenario:
    """One random draw from the scenario space (reconstructible from seed)."""

    seed: int
    label: str
    n_nodes: int
    n_jobs: int
    load_factor: float
    policy_kind: str  # fifo | easy | power-aware | time-varying
    cap_w: Optional[float]
    outages: tuple[NodeOutage, ...] = ()

    def build_policy(self):
        """A fresh policy instance (stateful policies must not be shared)."""
        if self.policy_kind == "fifo":
            return FifoScheduler()
        if self.policy_kind == "easy":
            return EasyBackfillScheduler()
        if self.policy_kind == "power-aware":
            assert self.cap_w is not None
            return PowerAwareScheduler(
                cap_w=self.cap_w,
                predictor=request_based_predictor(2 * BUDGET_PER_NODE_W),
            )
        if self.policy_kind == "time-varying":
            assert self.cap_w is not None
            return TimeVaryingBudgetScheduler(
                day_night_budget(self.cap_w, 0.8 * self.cap_w),
            )
        raise ValueError(f"unknown policy kind {self.policy_kind!r}")

    def build_jobs(self) -> list[Job]:
        config = WorkloadConfig(
            n_jobs=self.n_jobs,
            n_users=4,
            cluster_nodes=self.n_nodes,
            load_factor=self.load_factor,
        )
        gen = WorkloadGenerator(config, rng=np.random.default_rng(self.seed))
        return gen.generate()


def random_scenario(seed: int) -> HarnessScenario:
    """Deterministically expand ``seed`` into one scenario.

    Dimensions: cluster size (4–64 nodes), workload shape (20–120 jobs,
    light to oversubscribed), policy (FIFO / EASY / power-aware /
    time-varying budget), cap schedule (uncapped, or 55–90 % of the
    nameplate budget), and outage pattern (none, or 1–4 crash/repair
    cycles inside the busy window).  Tiny clusters + heavy caps maximize
    event collisions — the regime where core divergence hides.
    """
    rng = random.Random(seed)
    n_nodes = rng.choice((4, 8, 16, 24, 32, 64))
    n_jobs = rng.randrange(20, 121)
    load_factor = rng.choice((0.5, 0.9, 1.3))
    policy_kind = rng.choice(("fifo", "easy", "easy", "power-aware", "time-varying"))

    if policy_kind in ("power-aware", "time-varying"):
        cap_fraction: Optional[float] = rng.choice((0.55, 0.7, 0.9))
    else:
        cap_fraction = rng.choice((None, 0.55, 0.7, 0.9))
    cap_w = None if cap_fraction is None else cap_fraction * n_nodes * BUDGET_PER_NODE_W

    outages: list[NodeOutage] = []
    if rng.random() < 0.5:
        # Crash inside the first few workload hours, where jobs run.
        for _ in range(rng.randrange(1, 5)):
            outages.append(
                NodeOutage(
                    at_s=rng.uniform(100.0, 20_000.0),
                    node_id=rng.randrange(n_nodes),
                    duration_s=rng.uniform(300.0, 10_000.0),
                )
            )
    label = (
        f"{policy_kind}/n{n_nodes}/j{n_jobs}/load{load_factor}"
        f"/cap{cap_fraction}/out{len(outages)}"
    )
    return HarnessScenario(
        seed=seed,
        label=label,
        n_nodes=n_nodes,
        n_jobs=n_jobs,
        load_factor=load_factor,
        policy_kind=policy_kind,
        cap_w=cap_w,
        outages=tuple(outages),
    )


def run_core(scenario: HarnessScenario, core: str) -> SimulationResult:
    """Run ``scenario`` on one simulator core (fresh policy + workload)."""
    sim = ClusterSimulator(
        n_nodes=scenario.n_nodes,
        policy=scenario.build_policy(),
        cap_w=scenario.cap_w,
        node_outages=scenario.outages,
        core=core,
    )
    return sim.run(scenario.build_jobs())


def _fail(scenario: HarnessScenario, detail: str) -> None:
    raise AssertionError(
        f"core divergence in scenario {scenario.label} (seed {scenario.seed}): "
        f"{detail}\nreproduce with: python tests/diff_harness.py --seed {scenario.seed}"
    )


def compare_results(
    scenario: HarnessScenario,
    base: SimulationResult,
    base_core: str,
    other: SimulationResult,
    other_core: str,
) -> None:
    """Field-by-field equality of two results (exact, no tolerances)."""
    pair = f"{base_core} vs {other_core}"
    if len(base.records) != len(other.records):
        _fail(scenario, f"{pair}: record counts {len(base.records)} != {len(other.records)}")
    for ra, rb in zip(base.records, other.records):
        if ra.job.job_id != rb.job.job_id:
            _fail(scenario, f"{pair}: record order {ra.job.job_id} != {rb.job.job_id}")
        for name in _RECORD_FIELDS:
            va, vb = getattr(ra, name), getattr(rb, name)
            if va != vb:
                _fail(
                    scenario,
                    f"{pair}: job {ra.job.job_id} field {name}: {va!r} != {vb!r}",
                )
    for name in _RESULT_FIELDS:
        va, vb = getattr(base, name), getattr(other, name)
        if va != vb:
            _fail(scenario, f"{pair}: result field {name}: {va!r} != {vb!r}")
    ta, tb = base.power_trace, other.power_trace
    if not (
        np.array_equal(ta.times_s, tb.times_s)
        and np.array_equal(ta.power_w, tb.power_w)
    ):
        _fail(scenario, f"{pair}: power traces differ")
    for name in _QOS_METRICS:
        va, vb = getattr(base, name)(), getattr(other, name)()
        if va != vb and not (np.isnan(va) and np.isnan(vb)):
            _fail(scenario, f"{pair}: QoS metric {name}: {va!r} != {vb!r}")
    da, db = result_digest(base), result_digest(other)
    if da != db:
        _fail(scenario, f"{pair}: digests {da[:16]}… != {db[:16]}…")


def assert_equivalent(seed: int, cores: Sequence[str] = CORES) -> HarnessScenario:
    """Run one seeded scenario through ``cores`` and demand equality."""
    scenario = random_scenario(seed)
    base_core = cores[0]
    base = run_core(scenario, base_core)
    for core in cores[1:]:
        compare_results(scenario, base, base_core, run_core(scenario, core), core)
    return scenario


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, help="run exactly this scenario seed")
    parser.add_argument(
        "--scenarios", type=int, default=50,
        help="number of seeded scenarios to sweep (default 50)",
    )
    parser.add_argument(
        "--base-seed", type=int, default=0,
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--cores", default=",".join(CORES),
        help="comma-separated core list (default all three)",
    )
    args = parser.parse_args(argv)
    cores = tuple(args.cores.split(","))
    seeds = [args.seed] if args.seed is not None else list(
        range(args.base_seed, args.base_seed + args.scenarios)
    )
    for seed in seeds:
        scenario = assert_equivalent(seed, cores)
        print(f"seed {seed:>5}  OK  {scenario.label}")
    print(f"{len(seeds)} scenarios, {len(cores)} cores: all equivalent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
