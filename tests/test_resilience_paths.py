"""Unit tests for the per-subsystem recovery paths under injected faults.

Each class pins down one designed degradation/recovery behaviour: the
gateway's store-and-forward buffering through broker outages, the
scheduler's crash/requeue semantics, the capper's hold-last/fail-safe
ladder on sensor silence, and the power shelf's capacity derating.
"""

import numpy as np
import pytest

from repro.capping import NodePowerCapper, SensorWatchdog
from repro.hardware import ComputeNode, PsuModel, RackLevelSupply
from repro.monitoring import BrokerUnavailableError, GatewayDaemon, MqttBroker
from repro.scheduler import ClusterSimulator, FifoScheduler, Job, NodeOutage
from repro.sim import Environment


def _job(jid, nodes=1, submit=0.0, runtime=10.0, power=1000.0):
    return Job(job_id=jid, user="u", app="qe", n_nodes=nodes, walltime_req_s=runtime * 2,
               submit_time_s=submit, true_runtime_s=runtime, true_power_per_node_w=power)


class TestBrokerOutage:
    def test_offline_broker_rejects_publishes(self):
        broker = MqttBroker()
        broker.set_online(False)
        with pytest.raises(BrokerUnavailableError, match="broker offline"):
            broker.publish("davide/node0/power/node", {"p": 1.0})
        assert broker.rejected_count == 1

    def test_state_survives_outage(self):
        broker = MqttBroker()
        client = broker.connect("c")
        client.subscribe("davide/#")
        broker.publish("davide/a", 1, retain=True)
        client.drain()
        broker.set_online(False)
        broker.set_online(True)
        # Subscriptions and retained messages are intact after the bounce.
        broker.publish("davide/a", 2)
        assert [m.payload for m in client.drain()] == [2]
        late = broker.connect("late")
        late.subscribe("davide/a")
        assert [m.payload for m in late.drain()] == [1]


class TestGatewayStoreAndForward:
    def _daemon(self, env, broker, **kw):
        node = ComputeNode()
        kw.setdefault("period_s", 0.5)
        kw.setdefault("sensor_noise_w", 0.0)
        return GatewayDaemon(env, node, broker, **kw)

    def test_buffers_during_outage_and_flushes_in_order(self):
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        collector = broker.connect("collector")
        collector.subscribe("davide/#")
        daemon = self._daemon(env, broker, retry_backoff_s=0.25, max_backoff_s=1.0)
        env.run(until=2.1)
        n_before = daemon.samples_published
        assert n_before > 0
        broker.set_online(False)
        env.run(until=6.1)
        assert daemon.backlog > 0
        assert daemon.samples_published == n_before  # nothing leaked out
        broker.set_online(True)
        env.run(until=8.1)
        assert daemon.backlog == 0
        assert daemon.reconnects == 1
        assert daemon.republished_count > 0
        # Every delivered sample is in non-decreasing timestamp order.
        stamps = [m.payload["t"] for m in collector.drain()]
        assert stamps == sorted(stamps)

    def test_no_samples_lost_across_outage(self):
        env = Environment()
        broker = MqttBroker()
        collector = broker.connect("collector")
        collector.subscribe("davide/#")
        daemon = self._daemon(env, broker, period_s=1.0, retry_backoff_s=1.0,
                              backoff_factor=1.0, max_backoff_s=1.0)
        broker.set_online(False)
        env.run(until=10.5)
        broker.set_online(True)
        env.run(until=20.5)
        # ~1 sample/s the whole time; the outage cost latency, not data.
        assert daemon.samples_published >= 19
        assert daemon.buffer_dropped_count == 0
        assert len(collector.drain()) == daemon.samples_published

    def test_backoff_probes_thin_out(self):
        env = Environment()
        broker = MqttBroker()
        daemon = self._daemon(env, broker, period_s=1.0, retry_backoff_s=0.5,
                              backoff_factor=2.0, max_backoff_s=4.0)
        broker.set_online(False)
        env.run(until=30.0)
        # Exponential backoff: far fewer probes than periods elapsed.
        # (probe samples land in the buffer; drops say the buffer filled.)
        assert daemon.buffered_count < 30
        assert daemon.reconnects == 0

    def test_bounded_buffer_drops_oldest(self):
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        collector = broker.connect("collector")
        collector.subscribe("davide/#")
        daemon = self._daemon(env, broker, period_s=1.0, buffer_limit=3,
                              retry_backoff_s=1.0, backoff_factor=1.0,
                              max_backoff_s=1.0)
        broker.set_online(False)
        env.run(until=50.0)
        assert daemon.backlog == 3
        assert daemon.buffer_dropped_count > 0
        broker.set_online(True)
        env.run(until=52.5)
        # The three newest buffered stamps were delivered, none older.
        stamps = [m.payload["t"] for m in collector.drain()]
        assert stamps == sorted(stamps)
        assert daemon.republished_count == 3


class TestSchedulerCrashRequeue:
    def test_victim_requeued_and_completes(self):
        requeued = []
        sim = ClusterSimulator(
            2, FifoScheduler(),
            node_outages=[NodeOutage(at_s=5.0, node_id=0, duration_s=3.0)],
            on_job_requeue=requeued.append,
        )
        result = sim.run([_job(0, nodes=2, runtime=10.0)])
        assert result.n_requeues == 1
        assert [r.job.job_id for r in requeued] == [0]
        rec = result.records[0]
        assert rec.requeues == 1
        assert rec.end_time_s is not None
        # Killed at t=5, node back at t=8, restart from scratch: ends t=18.
        assert rec.end_time_s == pytest.approx(18.0)

    def test_burnt_joules_stay_on_the_record(self):
        sim = ClusterSimulator(
            2, FifoScheduler(), idle_node_power_w=0.0,
            node_outages=[NodeOutage(at_s=5.0, node_id=0, duration_s=3.0)],
        )
        result = sim.run([_job(0, nodes=2, runtime=10.0, power=1000.0)])
        rec = result.records[0]
        # 5 s burnt + 10 s full rerun at 2 kW.
        assert rec.energy_j == pytest.approx(15.0 * 2000.0)
        assert result.total_energy_j == pytest.approx(rec.energy_j)

    def test_crashed_node_excluded_until_repair(self):
        sim = ClusterSimulator(
            2, FifoScheduler(),
            node_outages=[NodeOutage(at_s=1.0, node_id=1, duration_s=100.0)],
        )
        jobs = [_job(0, runtime=4.0), _job(1, submit=2.0, runtime=4.0)]
        result = sim.run(jobs)
        # Node 1 died idle at t=1; job 1 must wait for node 0 (t=4), not
        # start on the fenced node at its submit time.
        rec1 = result.records[1]
        assert rec1.start_time_s == pytest.approx(4.0)
        assert rec1.nodes == (0,)

    def test_crash_on_idle_node_is_harmless(self):
        sim = ClusterSimulator(
            4, FifoScheduler(),
            node_outages=[NodeOutage(at_s=2.0, node_id=3, duration_s=5.0)],
        )
        result = sim.run([_job(0, runtime=10.0)])
        assert result.n_requeues == 0
        assert result.records[0].end_time_s == pytest.approx(10.0)

    def test_overlapping_outages_extend_recovery(self):
        sim = ClusterSimulator(
            1, FifoScheduler(),
            node_outages=[
                NodeOutage(at_s=1.0, node_id=0, duration_s=4.0),   # back at 5
                NodeOutage(at_s=3.0, node_id=0, duration_s=10.0),  # back at 13
            ],
        )
        result = sim.run([_job(0, runtime=2.0)])
        rec = result.records[0]
        assert rec.requeues == 1
        assert rec.end_time_s == pytest.approx(15.0)

    def test_outage_validation(self):
        with pytest.raises(ValueError, match="targets node"):
            ClusterSimulator(2, FifoScheduler(),
                             node_outages=[NodeOutage(at_s=0.0, node_id=7, duration_s=1.0)])
        with pytest.raises(ValueError):
            NodeOutage(at_s=-1.0, node_id=0, duration_s=1.0)
        with pytest.raises(ValueError):
            NodeOutage(at_s=0.0, node_id=0, duration_s=0.0)


class TestSensorWatchdog:
    def test_hold_last_and_staleness(self):
        wd = SensorWatchdog(stale_after_s=2.0, failsafe_after_s=6.0)
        wd.update("n0", 0.0, 100.0)
        wd.update("n1", 0.0, 50.0)
        assert wd.total_w(1.0) == pytest.approx(150.0)
        wd.update("n1", 4.0, 60.0)
        assert wd.stale_sources(4.0) == ["n0"]
        # n0 is stale but held: the sum still uses its last value.
        assert wd.total_w(4.0) == pytest.approx(160.0)
        assert not wd.all_silent(4.0)

    def test_all_silent_thresholds(self):
        wd = SensorWatchdog(stale_after_s=1.0, failsafe_after_s=3.0)
        assert wd.all_silent(0.0)  # nothing ever reported
        wd.update("n0", 0.0, 10.0)
        assert not wd.all_silent(2.0)
        assert wd.all_silent(3.5)
        wd.update("n0", 4.0, 10.0)
        assert not wd.all_silent(5.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorWatchdog(stale_after_s=0.0, failsafe_after_s=1.0)
        with pytest.raises(ValueError):
            SensorWatchdog(stale_after_s=2.0, failsafe_after_s=1.0)


class TestCapperFailsafe:
    def _capper(self, **kw):
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        kw.setdefault("control_period_s", 0.1)
        kw.setdefault("sensor_noise_w", 0.0)
        kw.setdefault("rng", np.random.default_rng(0))
        return NodePowerCapper(node, setpoint_w=1200.0, **kw)

    def test_healthy_path_unchanged_by_failsafe_machinery(self):
        run_a = self._capper().run(5.0)
        run_b = self._capper().run(5.0, sensor_ok_fn=lambda t: True)
        np.testing.assert_array_equal(run_a.commanded_cap_w, run_b.commanded_cap_w)

    def test_short_gap_holds_last_cap(self):
        capper = self._capper(failsafe_after_s=1.0)
        tele = capper.run(4.0, sensor_ok_fn=lambda t: not (2.0 <= t < 2.5))
        i_gap = np.where(np.isnan(tele.measured_w))[0]
        assert i_gap.size > 0
        i_before = i_gap[0] - 1
        # Every capped period within the short gap repeats the last command.
        for i in i_gap:
            assert tele.commanded_cap_w[i] == pytest.approx(tele.commanded_cap_w[i_before])
        assert capper.failsafe_engagements == 0

    def test_long_silence_drops_to_failsafe_then_recovers(self):
        capper = self._capper(failsafe_after_s=0.5, failsafe_cap_w=900.0)
        tele = capper.run(8.0, sensor_ok_fn=lambda t: not (2.0 <= t < 5.0))
        assert capper.failsafe_engagements == 1
        in_failsafe = np.isclose(tele.commanded_cap_w, 900.0)
        assert in_failsafe.sum() > 0
        # The fail-safe window sits strictly inside the silence window.
        t_fs = tele.times_s[in_failsafe]
        # Silence is timed from the last good sample (one period before
        # the gap opens), so allow one control period of slack.
        assert t_fs.min() >= 2.0 + 0.5 - capper.control_period_s - 1e-9
        assert t_fs.max() < 5.0
        # After telemetry returns, control resumes (no stuck fail-safe).
        tail = tele.commanded_cap_w[tele.times_s >= 5.0]
        assert not np.any(np.abs(tail - 900.0) < 1e-9)

    def test_failsafe_defaults(self):
        capper = self._capper()
        assert capper.failsafe_cap_w == pytest.approx(1200.0 * 0.8)
        assert capper.failsafe_after_s == pytest.approx(5 * capper.control_period_s)


class TestPsuShelfFailure:
    def test_capacity_derates_and_restores(self):
        shelf = RackLevelSupply(PsuModel(rating_w=3000.0), n_psus=6, min_active=2)
        full = shelf.capacity_w
        assert shelf.fail_psu() == 5
        assert shelf.capacity_w == pytest.approx(full * 5 / 6)
        shelf.fail_psu()
        assert shelf.failed_psus == 2
        assert shelf.restore_psu() == 5
        shelf.restore_psu()
        assert shelf.failed_psus == 0
        assert shelf.capacity_w == pytest.approx(full)

    def test_cannot_kill_last_psu(self):
        shelf = RackLevelSupply(PsuModel(rating_w=3000.0), n_psus=2, min_active=1)
        shelf.fail_psu()
        with pytest.raises(ValueError, match="last"):
            shelf.fail_psu()

    def test_restore_requires_a_failure(self):
        shelf = RackLevelSupply(PsuModel(rating_w=3000.0), n_psus=2, min_active=1)
        with pytest.raises(ValueError):
            shelf.restore_psu()

    def test_active_psus_clamp_to_available(self):
        shelf = RackLevelSupply(PsuModel(rating_w=3000.0), n_psus=4, min_active=3)
        for _ in range(2):
            shelf.fail_psu()
        # min_active=3 but only 2 survive: the shelf runs what it has.
        assert shelf.active_psus(1000.0) == 2
