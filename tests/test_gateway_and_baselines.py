"""Tests for the energy gateway, baseline monitors and the comparison harness."""

import numpy as np
import pytest

from repro.hardware import ComputeNode
from repro.monitoring import (
    ArduPowerMonitor,
    EnergyGateway,
    EnergyGatewayMonitor,
    GatewayConfig,
    HdeemMonitor,
    IpmiMonitor,
    MqttBroker,
    PowerInsightMonitor,
    aliasing_spread,
    compare_monitors,
    standard_monitors,
)
from repro.power import (
    PhaseAlternation,
    PowerTrace,
    hpc_job_power,
    trace_from_function,
)


def truth_trace(duration=0.05, rate=4e6, params=None):
    params = params or PhaseAlternation()
    return trace_from_function(hpc_job_power(params), duration, rate)


class TestGatewayConfig:
    def test_output_rate_matches_paper_50ksps(self):
        cfg = GatewayConfig()
        assert cfg.adc_rate_hz == pytest.approx(800e3)
        assert cfg.output_rate_hz == pytest.approx(50e3)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            GatewayConfig(adc_rate_hz=0)
        with pytest.raises(ValueError):
            GatewayConfig(decimation=0)


class TestEnergyGateway:
    def test_acquire_rate_and_accuracy(self):
        broker = MqttBroker()
        eg = EnergyGateway(0, broker)
        truth = truth_trace(duration=0.02)
        measured = eg.acquire(truth)
        assert measured.sample_rate_hz == pytest.approx(50e3, rel=0.02)
        assert measured.energy_error_fraction(truth) == pytest.approx(0.0, abs=0.01)

    def test_clock_rewrites_timestamps(self):
        broker = MqttBroker()
        eg = EnergyGateway(0, broker, clock=lambda t: t + 5.0)
        truth = truth_trace(duration=0.01)
        measured = eg.acquire(truth)
        assert measured.times_s[0] == pytest.approx(5.0, abs=0.001)

    def test_publish_and_reassemble_roundtrip(self):
        broker = MqttBroker()
        collector = broker.connect("collector")
        collector.subscribe("davide/node0/power/node", qos=1)
        eg = EnergyGateway(0, broker)
        truth = truth_trace(duration=0.02)
        measured = eg.acquire_and_publish(truth)
        msgs = collector.drain()
        assert len(msgs) >= 2  # batched
        rebuilt = EnergyGateway.reassemble(msgs)
        assert len(rebuilt) == len(measured)
        assert np.allclose(rebuilt.power_w, measured.power_w)

    def test_reassemble_drops_qos1_duplicates(self):
        broker = MqttBroker()
        collector = broker.connect("collector")
        collector.subscribe("davide/node0/power/node", qos=1)
        eg = EnergyGateway(0, broker)
        measured = eg.acquire_and_publish(truth_trace(duration=0.01))
        collector.redeliver_inflight()
        rebuilt = EnergyGateway.reassemble(collector.drain())
        assert len(rebuilt) == len(measured)

    def test_last_batch_retained_for_late_subscribers(self):
        broker = MqttBroker()
        eg = EnergyGateway(3, broker)
        eg.acquire_and_publish(truth_trace(duration=0.01))
        late = broker.connect("late")
        late.subscribe("davide/node3/power/node")
        assert late.poll() is not None

    def test_measure_node_covers_all_rails(self):
        broker = MqttBroker()
        eg = EnergyGateway(0, broker, config=GatewayConfig(adc_rate_hz=100e3, decimation=4))
        node = ComputeNode()
        node.set_utilization(cpu=0.5, gpu=0.5, memory_intensity=0.5)
        rails = eg.measure_node(node, duration_s=0.005)
        assert "node" in rails and "gpu0" in rails and "cpu0" in rails and "mem" in rails
        truth_total = node.power_w()
        assert rails["node"].mean_power_w() == pytest.approx(truth_total, rel=0.02)

    def test_measure_node_validation(self):
        eg = EnergyGateway(0, MqttBroker())
        with pytest.raises(ValueError):
            eg.measure_node(ComputeNode(), duration_s=0.0)

    def test_publish_empty_trace_is_noop(self):
        eg = EnergyGateway(0, MqttBroker())
        assert eg.publish_trace(PowerTrace(np.array([]), np.array([]))) == 0


class TestBaselineMonitors:
    def test_gateway_monitor_most_accurate(self):
        truth = truth_trace(duration=2.0, rate=2e6)
        scores = compare_monitors(standard_monitors(seed=1), truth)
        assert scores[0].name == "Energy Gateway (D.A.V.I.D.E.)"
        # And the EG energy error is sub-1%.
        assert scores[0].abs_energy_error_pct < 1.0

    def test_ipmi_least_accurate_on_dynamic_workload(self):
        truth = truth_trace(duration=2.0, rate=2e6)
        scores = compare_monitors(standard_monitors(seed=1), truth)
        names = [s.name for s in scores]
        assert names[-1] == "IPMI/BMC"

    def test_sample_rates_match_related_work(self):
        assert IpmiMonitor().sample_rate_hz == pytest.approx(1.0)
        assert HdeemMonitor().sample_rate_hz == pytest.approx(8e3)
        assert ArduPowerMonitor().sample_rate_hz == pytest.approx(1e3)
        assert PowerInsightMonitor().sample_rate_hz == pytest.approx(1e3)
        assert EnergyGatewayMonitor().sample_rate_hz == pytest.approx(50e3)

    def test_ipmi_timestamps_jittered_but_monotone(self):
        truth = truth_trace(duration=3.0, rate=1e5)
        reported = IpmiMonitor(rng=np.random.default_rng(0)).measure(truth)
        assert np.all(np.diff(reported.times_s) > 0)
        # Jitter: timestamps deviate from the exact 1 s grid.
        offsets = reported.times_s - np.round(reported.times_s)
        assert np.abs(offsets).max() > 1e-3

    def test_hdeem_measures_reasonably(self):
        truth = truth_trace(duration=0.5, rate=1e6)
        reported = HdeemMonitor(rng=np.random.default_rng(2)).measure(truth)
        assert abs(reported.energy_error_fraction(truth)) < 0.05

    def test_standard_monitors_deterministic(self):
        truth = truth_trace(duration=0.2, rate=1e6)
        a = compare_monitors(standard_monitors(seed=7), truth)
        b = compare_monitors(standard_monitors(seed=7), truth)
        assert [s.energy_error_fraction for s in a] == [s.energy_error_fraction for s in b]


class TestComparisonHarness:
    def test_short_truth_rejected(self):
        with pytest.raises(ValueError):
            compare_monitors([], PowerTrace(np.array([0.0]), np.array([1.0])))

    def test_scorecard_fields(self):
        truth = truth_trace(duration=0.1, rate=1e6)
        [score] = compare_monitors([EnergyGatewayMonitor(rng=np.random.default_rng(0))], truth)
        assert score.nyquist_hz == pytest.approx(25e3)
        assert score.synchronized_timestamps
        assert score.abs_energy_error_pct >= 0

    def test_aliasing_spread_larger_for_ipmi_than_gateway(self):
        params = PhaseAlternation(ripple_w=0.0, drift_w=0.0, phase_period_s=0.31)

        def factory(phase):
            fn = hpc_job_power(params)
            return trace_from_function(lambda t: fn(t + phase * params.phase_period_s), 5.0, 2e4)

        ipmi = aliasing_spread(IpmiMonitor(rng=np.random.default_rng(0)), factory, n_phases=6)
        eg = aliasing_spread(
            EnergyGatewayMonitor(rng=np.random.default_rng(0)), factory, n_phases=3
        )
        assert ipmi["std_error"] > eg["std_error"] * 3
        assert ipmi["worst_abs_error"] > eg["worst_abs_error"]

    def test_aliasing_spread_validation(self):
        with pytest.raises(ValueError):
            aliasing_spread(IpmiMonitor(), lambda p: None, n_phases=1)


class TestChannelMultiplexing:
    def test_rails_sampled_at_staggered_phases(self):
        """The 8-channel mux staggers rail sampling instants (III-A1)."""
        import numpy as np
        from repro.power import trace_from_function

        broker = MqttBroker()
        eg = EnergyGateway(0, broker, config=GatewayConfig(adc_rate_hz=100e3, decimation=1))
        truth = trace_from_function(lambda t: np.full_like(t, 1000.0), 0.001, 1e6)
        t0 = eg.acquire(truth, rail="cpu0", channel=0).times_s[0]
        t1 = eg.acquire(truth, rail="cpu1", channel=1).times_s[0]
        t4 = eg.acquire(truth, rail="gpu2", channel=4).times_s[0]
        period = 1.0 / 100e3
        assert t1 - t0 == pytest.approx(period / 8, rel=1e-6)
        assert t4 - t0 == pytest.approx(4 * period / 8, rel=1e-6)

    def test_per_channel_rate_with_all_rails(self):
        """8 rails on the 1.6 MS/s converter still leave 200 kS/s each."""
        from repro.power import SarAdc

        adc = SarAdc()
        assert adc.per_channel_rate_hz(1.6e6, 8) == pytest.approx(200e3)
        # The production configuration (800 kS/s on the node rail) fits
        # alongside 7 more rails at 100 kS/s each... aggregate check:
        assert adc.per_channel_rate_hz(800e3, 8) == pytest.approx(100e3)
