"""Determinism and merge-order guarantees of the campaign runner.

DESIGN.md §9: a campaign's results must depend only on (config, grid) —
never on the pool size, the start method, or completion order.  The
root seed fans out to per-scenario ``SeedSequence`` streams, results
merge in submission order, and the campaign digest is the single string
that certifies all of it.
"""

import numpy as np
import pytest

from repro.scheduler import (
    CampaignConfig,
    ClusterSimulator,
    FifoScheduler,
    NodeOutage,
    Scenario,
    campaign_digest,
    result_digest,
    run_campaign,
    run_scenario,
    scenario_rng,
    scenario_workload,
)

CONFIG = CampaignConfig(n_nodes=16, n_jobs=50, root_seed=42, load_factor=1.1)

GRID = [
    Scenario(policy="fifo", seed_index=0),
    Scenario(policy="fifo", cap_w=20e3, seed_index=0),
    Scenario(policy="easy", cap_w=20e3, seed_index=1),
    Scenario(policy="power-aware", cap_w=20e3, seed_index=1),
    Scenario(policy="power-aware", budget_w=20e3, seed_index=0,
             predictor="nameplate:2000"),
    Scenario(policy="easy", cap_w=18e3, seed_index=2,
             node_outages=(NodeOutage(at_s=5000.0, node_id=1, duration_s=2000.0),)),
]


class TestDeterminism:
    def test_scenario_rng_is_stable(self):
        a = scenario_rng(42, 3).random(8)
        b = scenario_rng(42, 3).random(8)
        assert np.array_equal(a, b)
        # Different indices give different (independent) streams.
        assert not np.array_equal(a, scenario_rng(42, 4).random(8))

    def test_same_seed_index_pairs_workloads_across_cells(self):
        """Every policy/cap cell at one seed_index sees the same jobs."""
        w1 = scenario_workload(CONFIG, Scenario(policy="fifo", seed_index=1))
        w2 = scenario_workload(
            CONFIG, Scenario(policy="easy", cap_w=20e3, seed_index=1))
        assert [j.job_id for j in w1] == [j.job_id for j in w2]
        assert [j.true_power_w for j in w1] == [j.true_power_w for j in w2]
        assert [j.submit_time_s for j in w1] == [j.submit_time_s for j in w2]

    def test_pool_size_does_not_change_results(self):
        serial = run_campaign(CONFIG, GRID, processes=1)
        pool2 = run_campaign(CONFIG, GRID, processes=2)
        pool3 = run_campaign(CONFIG, GRID, processes=3)
        assert campaign_digest(serial) == campaign_digest(pool2)
        assert campaign_digest(serial) == campaign_digest(pool3)
        for a, b in zip(serial, pool2):
            assert a.scenario == b.scenario
            assert a.qos == b.qos
            assert a.digest == b.digest

    def test_merge_preserves_submission_order(self):
        results = run_campaign(CONFIG, GRID, processes=2)
        assert [r.scenario for r in results] == GRID

    def test_rerun_is_bit_stable(self):
        first = run_campaign(CONFIG, GRID[:3], processes=1)
        second = run_campaign(CONFIG, GRID[:3], processes=1)
        assert campaign_digest(first) == campaign_digest(second)


class TestScenarioSemantics:
    def test_reference_core_same_digest(self):
        """Both simulator cores produce the same campaign digest — the
        equivalence contract, certified through the digest path."""
        fast = run_scenario(CONFIG, Scenario(policy="easy", cap_w=20e3))
        ref = run_scenario(
            CONFIG, Scenario(policy="easy", cap_w=20e3, reference=True))
        assert fast.digest == ref.digest
        assert fast.qos == ref.qos

    def test_result_digest_detects_changes(self):
        jobs = scenario_workload(CONFIG, Scenario(policy="fifo"))
        a = ClusterSimulator(CONFIG.n_nodes, FifoScheduler()).run(jobs)
        b = ClusterSimulator(CONFIG.n_nodes, FifoScheduler(), cap_w=20e3).run(jobs)
        assert result_digest(a) != result_digest(b)
        assert result_digest(a) == result_digest(a)

    def test_train_fraction_splits_chronologically(self):
        res = run_scenario(
            CONFIG,
            Scenario(policy="power-aware", cap_w=20e3,
                     predictor="ridge", train_fraction=0.4),
        )
        assert res.qos["n_jobs"] == CONFIG.n_jobs - int(CONFIG.n_jobs * 0.4)

    def test_qos_summary_keys(self):
        res = run_scenario(CONFIG, Scenario(policy="fifo", cap_w=20e3))
        for key in ("mean_wait_s", "p95_wait_s", "mean_bounded_slowdown",
                    "mean_stretch", "peak_power_w", "mean_power_w",
                    "makespan_s", "total_energy_j", "utilization",
                    "overdemand_s", "cap_violation_fraction", "n_requeues"):
            assert key in res.qos
        assert res.qos["peak_power_w"] <= 20e3 * 1.001

    def test_empty_grid(self):
        assert run_campaign(CONFIG, []) == []


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Scenario(policy="sjf")

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            Scenario(policy="power-aware", cap_w=1e3, predictor="gpt")

    def test_power_aware_needs_budget(self):
        with pytest.raises(ValueError, match="budget_w or cap_w"):
            Scenario(policy="power-aware")

    def test_ridge_needs_training_split(self):
        with pytest.raises(ValueError, match="train_fraction"):
            Scenario(policy="power-aware", cap_w=1e3, predictor="ridge")

    def test_bad_train_fraction_rejected(self):
        with pytest.raises(ValueError, match="train fraction"):
            Scenario(policy="fifo", train_fraction=1.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_nodes=0, n_jobs=10)
