"""Determinism and merge-order guarantees of the campaign runner.

DESIGN.md §9: a campaign's results must depend only on (config, grid) —
never on the pool size, the start method, or completion order.  The
root seed fans out to per-scenario ``SeedSequence`` streams, results
merge in submission order, and the campaign digest is the single string
that certifies all of it.
"""

import dataclasses
import pickle

import numpy as np
import pytest

from repro.scheduler import (
    CampaignConfig,
    ClusterSimulator,
    FifoScheduler,
    NodeOutage,
    Scenario,
    campaign_digest,
    merge_results,
    result_digest,
    run_campaign,
    run_scenario,
    scenario_rng,
    scenario_workload,
)

CONFIG = CampaignConfig(n_nodes=16, n_jobs=50, root_seed=42, load_factor=1.1)

GRID = [
    Scenario(policy="fifo", seed_index=0),
    Scenario(policy="fifo", cap_w=20e3, seed_index=0),
    Scenario(policy="easy", cap_w=20e3, seed_index=1),
    Scenario(policy="power-aware", cap_w=20e3, seed_index=1),
    Scenario(policy="power-aware", budget_w=20e3, seed_index=0,
             predictor="nameplate:2000"),
    Scenario(policy="easy", cap_w=18e3, seed_index=2,
             node_outages=(NodeOutage(at_s=5000.0, node_id=1, duration_s=2000.0),)),
]


class TestDeterminism:
    def test_scenario_rng_is_stable(self):
        a = scenario_rng(42, 3).random(8)
        b = scenario_rng(42, 3).random(8)
        assert np.array_equal(a, b)
        # Different indices give different (independent) streams.
        assert not np.array_equal(a, scenario_rng(42, 4).random(8))

    def test_same_seed_index_pairs_workloads_across_cells(self):
        """Every policy/cap cell at one seed_index sees the same jobs."""
        w1 = scenario_workload(CONFIG, Scenario(policy="fifo", seed_index=1))
        w2 = scenario_workload(
            CONFIG, Scenario(policy="easy", cap_w=20e3, seed_index=1))
        assert [j.job_id for j in w1] == [j.job_id for j in w2]
        assert [j.true_power_w for j in w1] == [j.true_power_w for j in w2]
        assert [j.submit_time_s for j in w1] == [j.submit_time_s for j in w2]

    def test_pool_size_does_not_change_results(self):
        serial = run_campaign(CONFIG, GRID, processes=1)
        pool2 = run_campaign(CONFIG, GRID, processes=2)
        pool3 = run_campaign(CONFIG, GRID, processes=3)
        assert campaign_digest(serial) == campaign_digest(pool2)
        assert campaign_digest(serial) == campaign_digest(pool3)
        for a, b in zip(serial, pool2):
            assert a.scenario == b.scenario
            assert a.qos == b.qos
            assert a.digest == b.digest

    def test_merge_preserves_submission_order(self):
        results = run_campaign(CONFIG, GRID, processes=2)
        assert [r.scenario for r in results] == GRID

    def test_rerun_is_bit_stable(self):
        first = run_campaign(CONFIG, GRID[:3], processes=1)
        second = run_campaign(CONFIG, GRID[:3], processes=1)
        assert campaign_digest(first) == campaign_digest(second)


class TestScenarioSemantics:
    def test_reference_core_same_digest(self):
        """All simulator cores produce the same campaign digest — the
        equivalence contract, certified through the digest path."""
        fast = run_scenario(CONFIG, Scenario(policy="easy", cap_w=20e3))
        ref = run_scenario(
            CONFIG, Scenario(policy="easy", cap_w=20e3, reference=True))
        assert fast.digest == ref.digest
        assert fast.qos == ref.qos

    def test_every_grid_cell_is_core_invariant(self):
        """The campaign default (array core) matches an explicit
        calendar-core run at *every* cell of the grid, digests and QoS
        alike — pool results stay comparable across core choices."""
        default = run_campaign(CONFIG, GRID, processes=1)
        calendar = run_campaign(
            CONFIG,
            [dataclasses.replace(s, core="calendar") for s in GRID],
            processes=1,
        )
        for a, b in zip(default, calendar):
            assert a.digest == b.digest
            assert a.qos == b.qos

    def test_pool_size_invariant_on_explicit_array_core(self):
        grid = [dataclasses.replace(s, core="array") for s in GRID[:4]]
        serial = run_campaign(CONFIG, grid, processes=1)
        pooled = run_campaign(CONFIG, grid, processes=3)
        assert campaign_digest(serial) == campaign_digest(pooled)

    def test_result_digest_detects_changes(self):
        jobs = scenario_workload(CONFIG, Scenario(policy="fifo"))
        a = ClusterSimulator(CONFIG.n_nodes, FifoScheduler()).run(jobs)
        b = ClusterSimulator(CONFIG.n_nodes, FifoScheduler(), cap_w=20e3).run(jobs)
        assert result_digest(a) != result_digest(b)
        assert result_digest(a) == result_digest(a)

    def test_train_fraction_splits_chronologically(self):
        res = run_scenario(
            CONFIG,
            Scenario(policy="power-aware", cap_w=20e3,
                     predictor="ridge", train_fraction=0.4),
        )
        assert res.qos["n_jobs"] == CONFIG.n_jobs - int(CONFIG.n_jobs * 0.4)

    def test_qos_summary_keys(self):
        res = run_scenario(CONFIG, Scenario(policy="fifo", cap_w=20e3))
        for key in ("mean_wait_s", "p95_wait_s", "mean_bounded_slowdown",
                    "mean_stretch", "peak_power_w", "mean_power_w",
                    "makespan_s", "total_energy_j", "utilization",
                    "overdemand_s", "cap_violation_fraction", "n_requeues"):
            assert key in res.qos
        assert res.qos["peak_power_w"] <= 20e3 * 1.001

    def test_empty_grid(self):
        assert run_campaign(CONFIG, []) == []


class TestKeepAndMerge:
    def test_keep_results_carries_full_results_through_the_pool(self):
        results = run_campaign(CONFIG, GRID[:3], processes=2, keep_results=True)
        for r in results:
            assert r.result is not None
            assert len(r.result.records) == CONFIG.n_jobs
            assert result_digest(r.result) == r.digest

    def test_default_drops_result_payload(self):
        results = run_campaign(CONFIG, GRID[:2], processes=1)
        assert all(r.result is None for r in results)

    def test_qos_caches_rebuild_after_pickle(self):
        """Regression: SimulationResult drops its QoS caches on pickle
        (the pool round-trips every kept result), so a merged shard must
        serve cache-backed metrics identical to a never-pickled run."""
        local = run_scenario(CONFIG, GRID[1], keep_result=True)
        pooled = run_campaign(CONFIG, GRID[:2], processes=2,
                              keep_results=True)[1]
        roundtrip = pickle.loads(pickle.dumps(local.result))
        for metric in ("mean_wait_s", "p95_wait_s", "mean_bounded_slowdown",
                       "mean_stretch", "cap_violation_fraction"):
            want = getattr(local.result, metric)()
            assert getattr(pooled.result, metric)() == want
            assert getattr(roundtrip, metric)() == want

    def test_merge_results_dedups_and_preserves_order(self):
        a = run_campaign(CONFIG, GRID[:4], processes=1)
        b = run_campaign(CONFIG, GRID[2:], processes=1)
        merged = merge_results(a, b)
        assert [r.scenario for r in merged] == GRID
        assert campaign_digest(merged) == campaign_digest(
            run_campaign(CONFIG, GRID, processes=1))

    def test_merge_results_rejects_conflicting_digests(self):
        a = run_campaign(CONFIG, GRID[:2], processes=1)
        conflicting = dataclasses.replace(a[1], digest="0" * 64)
        with pytest.raises(ValueError, match="conflicting digests"):
            merge_results(a, [conflicting])

    def test_merge_dedups_respelled_and_relabeled_scenarios(self):
        """Regression: merge used to key on ``repr(scenario)``, so a
        default-equivalent respelling (power-aware ``budget_w=None``
        falling back to ``cap_w`` vs. spelling the budget out) or a
        cosmetic label produced duplicate rows.  Keys now come from
        ``scenario_fingerprint``, which canonicalizes both."""
        spelled = Scenario(policy="power-aware", cap_w=20e3, budget_w=20e3,
                           seed_index=1)
        relabeled = dataclasses.replace(GRID[3], label="same cell, new name")
        a = run_campaign(CONFIG, [GRID[3]], processes=1)
        b = run_campaign(CONFIG, [spelled, relabeled], processes=1)
        merged = merge_results(a, b)
        assert len(merged) == 1
        assert merged[0].digest == a[0].digest
        assert merged[0].scenario == GRID[3]  # first occurrence wins

    def test_merge_dedups_reordered_outage_twins(self):
        """Regression: outage listing order used to be part of the
        fingerprint, so two shards listing the same outage set in
        different orders duplicated the cell instead of collapsing."""
        outages = (NodeOutage(at_s=5000.0, node_id=1, duration_s=2000.0),
                   NodeOutage(at_s=800.0, node_id=3, duration_s=1500.0))
        cell = Scenario(policy="easy", cap_w=18e3, seed_index=2,
                        node_outages=outages)
        twin = dataclasses.replace(
            cell, node_outages=tuple(reversed(outages)), label="twin")
        a = run_campaign(CONFIG, [cell], processes=1)
        b = run_campaign(CONFIG, [twin], processes=1)
        merged = merge_results(a, b)
        assert len(merged) == 1
        assert merged[0].digest == a[0].digest == b[0].digest
        assert merged[0].scenario == cell  # first occurrence wins

    def test_merge_collapses_written_out_floor_with_config(self):
        """Regression: a shard writing ``dvfs_floor == config.min_speed``
        out explicitly fingerprinted apart from the omitted-floor shard
        (scenario_key collapsed them, the config-free fingerprint did
        not), so ``merge_results`` duplicated the cell.  Threading the
        shared config through ``merge_results(config=...)`` makes the
        merge agree with the key."""
        spelled = dataclasses.replace(GRID[2], dvfs_floor=CONFIG.min_speed)
        a = run_campaign(CONFIG, [GRID[2]], processes=1)
        b = run_campaign(CONFIG, [spelled], processes=1)
        assert a[0].digest == b[0].digest  # same simulation either way
        merged = merge_results(a, b, config=CONFIG)
        assert len(merged) == 1
        assert merged[0].scenario == GRID[2]
        # Without the config the fingerprint cannot know the default:
        # the conservative config-free path keeps both spellings.
        assert len(merge_results(a, b)) == 2

    def test_merge_prefers_kept_payload_over_dropped(self):
        """Merging a digest-identical pair keeps the copy that still
        carries its SimulationResult payload."""
        bare = run_campaign(CONFIG, GRID[:2], processes=1)
        kept = run_campaign(CONFIG, GRID[:2], processes=1, keep_results=True)
        merged = merge_results(bare, kept)
        assert len(merged) == 2
        assert all(r.result is not None for r in merged)


class TestValidation:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            Scenario(policy="sjf")

    def test_unknown_core_rejected(self):
        with pytest.raises(ValueError, match="unknown core"):
            Scenario(policy="fifo", core="gpu")

    def test_reference_flag_conflicts_with_other_core(self):
        with pytest.raises(ValueError, match="conflicts"):
            Scenario(policy="fifo", reference=True, core="array")
        # reference=True with core="reference" (or unset) is fine.
        Scenario(policy="fifo", reference=True, core="reference")
        Scenario(policy="fifo", reference=True)

    def test_unknown_predictor_rejected(self):
        with pytest.raises(ValueError, match="unknown predictor"):
            Scenario(policy="power-aware", cap_w=1e3, predictor="gpt")

    def test_power_aware_needs_budget(self):
        with pytest.raises(ValueError, match="budget_w or cap_w"):
            Scenario(policy="power-aware")

    def test_ridge_needs_training_split(self):
        with pytest.raises(ValueError, match="train_fraction"):
            Scenario(policy="power-aware", cap_w=1e3, predictor="ridge")

    def test_bad_train_fraction_rejected(self):
        with pytest.raises(ValueError, match="train fraction"):
            Scenario(policy="fifo", train_fraction=1.0)

    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            CampaignConfig(n_nodes=0, n_jobs=10)
