"""Regression tests for the EA/Pr energy mis-attribution bugs.

Two silent undercounts hid in the Fig.-4 accounting path:

1. :meth:`EnergyAccountant.job_energy_j` billed a job as if its
   *unmeasured* nodes drew nothing whenever at least one node had
   coverage — a partial monitoring outage shrank the bill.  The fix
   falls back per node to an equal share of the simulator-accounted
   energy and reports the measurement coverage on the bill.
2. :meth:`PowerProfiler.profile` sliced the trace to on-grid samples,
   losing up to one sample period of energy at each side of every
   region marker.  The fix splices interpolated boundary samples into
   the integral.

Plus equivalence tests for the TSDB bulk-insert fast path and the
vectorised downsampler, which must match the per-sample slow path
bit-for-bit on any input ordering.
"""

import numpy as np
import pytest

from repro.observability import Observability
from repro.power.trace import PowerTrace
from repro.scheduler.job import Job, JobRecord
from repro.telemetry.accounting import EnergyAccountant
from repro.telemetry.profiler import PhaseMarker, PowerProfiler
from repro.telemetry.tsdb import SeriesKey, TimeSeriesDB


def _record(n_nodes, energy_j, t0=0.0, t1=10.0):
    job = Job(job_id=1, user="u", app="qe", n_nodes=n_nodes,
              walltime_req_s=t1 - t0, submit_time_s=0.0)
    rec = JobRecord(job=job)
    rec.nodes = tuple(range(n_nodes))
    rec.start_time_s, rec.end_time_s = t0, t1
    rec.energy_j = energy_j
    return rec


class TestPartialOutageBilling:
    def _db_with_nodes(self, node_ids, watts=1000.0):
        db = TimeSeriesDB()
        acct = EnergyAccountant(db)
        for node_id in node_ids:
            db.insert_many(acct.node_key(node_id), np.linspace(0, 10, 11),
                           np.full(11, watts))
        return db, acct

    def test_partial_outage_bills_within_one_percent_of_accounted(self):
        # 4-node job, simulator accounted 40 kJ; only 3 nodes measured.
        _, acct = self._db_with_nodes([0, 1, 2])
        rec = _record(4, energy_j=40_000.0)
        bill = acct.bill(rec)
        assert bill.energy_j == pytest.approx(rec.energy_j, rel=0.01)
        assert bill.measured_fraction == pytest.approx(0.75)

    def test_uncovered_nodes_no_longer_billed_as_zero(self):
        _, acct = self._db_with_nodes([0])
        rec = _record(2, energy_j=20_000.0)
        # Old behaviour: 10 kJ (surviving node only).  Fixed: the dark
        # node contributes its accounted share.
        assert acct.job_energy_j(rec) == pytest.approx(20_000.0)

    def test_full_coverage_is_pure_measurement(self):
        _, acct = self._db_with_nodes([0, 1])
        rec = _record(2, energy_j=123.0)  # accounted value is irrelevant
        bill = acct.bill(rec)
        assert bill.energy_j == pytest.approx(20_000.0)
        assert bill.measured_fraction == 1.0

    def test_total_outage_falls_back_to_accounted_energy(self):
        db = TimeSeriesDB()
        acct = EnergyAccountant(db)
        rec = _record(2, energy_j=31_415.0)
        bill = acct.bill(rec)
        assert bill.energy_j == pytest.approx(31_415.0)
        assert bill.measured_fraction == 0.0

    def test_sparse_series_counts_as_uncovered(self):
        # One lone sample cannot be integrated: that node must fall back.
        db = TimeSeriesDB()
        acct = EnergyAccountant(db)
        db.insert_many(acct.node_key(0), np.linspace(0, 10, 11), np.full(11, 1000.0))
        db.insert(acct.node_key(1), 5.0, 1000.0)
        rec = _record(2, energy_j=20_000.0)
        bill = acct.bill(rec)
        assert bill.energy_j == pytest.approx(20_000.0)
        assert bill.measured_fraction == pytest.approx(0.5)


class TestProfilerBoundaryEnergy:
    def test_off_grid_markers_attribute_exact_energy(self):
        # Constant 200 W sampled every 0.5 s; markers deliberately off-grid.
        trace = PowerTrace(np.arange(0.0, 10.0, 0.5), np.full(20, 200.0))
        prof = PowerProfiler(trace)
        marker = PhaseMarker("phase", 1.23, 4.56)
        profile = prof.profile([marker])["phase"]
        assert profile.total_energy_j == pytest.approx(200.0 * marker.duration_s)
        assert profile.mean_power_w == pytest.approx(200.0)

    def test_adjacent_regions_conserve_total_energy(self):
        # A ramp trace: splitting [0, 8] into off-grid pieces must not
        # create or destroy energy at the internal boundaries.
        t = np.linspace(0.0, 8.0, 17)
        trace = PowerTrace(t, 100.0 + 25.0 * t)
        prof = PowerProfiler(trace)
        cuts = [0.0, 1.7, 3.1, 5.9, 8.0]
        markers = [PhaseMarker(f"r{i}", cuts[i], cuts[i + 1]) for i in range(4)]
        pieces = prof.profile(markers)
        total = sum(p.total_energy_j for p in pieces.values())
        assert total == pytest.approx(trace.energy_j())

    def test_sub_sample_marker_between_grid_points(self):
        trace = PowerTrace(np.arange(0.0, 10.0, 1.0), np.full(10, 500.0))
        prof = PowerProfiler(trace)
        profile = prof.profile([PhaseMarker("tiny", 3.2, 3.7)])["tiny"]
        assert profile.total_energy_j == pytest.approx(500.0 * 0.5)

    def test_zero_duration_marker_is_zero_energy(self):
        trace = PowerTrace(np.arange(0.0, 5.0, 0.5), np.full(10, 300.0))
        prof = PowerProfiler(trace)
        assert prof.profile([PhaseMarker("p", 2.0, 2.0)])["p"].total_energy_j == 0.0


class TestTsdbBulkEquivalence:
    KEY = SeriesKey.of("node_power", node="0")

    def _pair(self, chunks):
        bulk, slow = TimeSeriesDB(), TimeSeriesDB()
        for t, v in chunks:
            bulk.insert_many(self.KEY, t, v)
            for ti, vi in zip(t, v):
                slow.insert(self.KEY, ti, vi)
        return bulk, slow

    def _chunks(self, seed, n_chunks=8, chunk=64, shuffle_every=2):
        rng = np.random.default_rng(seed)
        t0 = 0.0
        out = []
        for i in range(n_chunks):
            t = t0 + np.sort(rng.uniform(0.0, 10.0, chunk))
            v = rng.normal(1500.0, 200.0, chunk)
            if i % shuffle_every == 0:
                order = rng.permutation(chunk)
                t, v = t[order], v[order]
            # Overlap chunks half the time to force the slow path.
            t0 += 10.0 if i % 2 else 5.0
            out.append((t, v))
        return out

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_query_identical_on_mixed_order_input(self, seed):
        bulk, slow = self._pair(self._chunks(seed))
        tb, vb = bulk.query(self.KEY)
        ts, vs = slow.query(self.KEY)
        assert np.array_equal(tb, ts)
        assert np.array_equal(vb, vs)
        assert np.all(np.diff(tb) >= 0)

    @pytest.mark.parametrize("agg", ["mean", "max", "min", "sum", "count"])
    def test_downsample_matches_slow_path(self, agg):
        bulk, slow = self._pair(self._chunks(7))
        tb, vb = bulk.downsample(self.KEY, 3.0, agg)
        ts, vs = slow.downsample(self.KEY, 3.0, agg)
        assert np.allclose(tb, ts)
        assert np.allclose(vb, vs)

    def test_downsample_reference_values(self):
        db = TimeSeriesDB()
        db.insert_many(self.KEY, [0.0, 1.0, 2.5, 3.0, 9.0], [1.0, 3.0, 10.0, 4.0, 7.0])
        t, v = db.downsample(self.KEY, 2.0, "mean")
        assert np.allclose(t, [1.0, 3.0, 9.0])
        assert np.allclose(v, [2.0, 7.0, 7.0])
        _, counts = db.downsample(self.KEY, 2.0, "count")
        assert np.allclose(counts, [2.0, 2.0, 1.0])

    def test_sorted_batches_take_fast_path_and_count_writes(self):
        db = TimeSeriesDB()
        obs = Observability()
        db.bind_observability(obs)
        t = np.arange(100.0)
        db.insert_many(self.KEY, t, t * 2.0)
        db.insert(self.KEY, 100.0, 0.0)
        assert db.sample_count() == 101
        assert obs.metrics.total("tsdb_samples_written_total") == 101

    def test_late_binding_seeds_existing_samples(self):
        db = TimeSeriesDB()
        db.insert_many(self.KEY, np.arange(10.0), np.zeros(10))
        obs = Observability()
        db.bind_observability(obs)
        assert obs.metrics.total("tsdb_samples_written_total") == 10
