"""Tests for the scheduler monitoring plugin and the sim-kernel daemons."""

import numpy as np
import pytest

from repro.hardware import ComputeNode
from repro.monitoring import CappingAgent, GatewayDaemon, MqttBroker
from repro.scheduler import Job, JobRecord, SchedulerMonitorPlugin
from repro.sim import Environment


def make_record(job_id=1, nodes=(0,), start=0.0, end=10.0, power=1500.0):
    job = Job(job_id=job_id, user="alice", app="qe", n_nodes=len(nodes),
              walltime_req_s=20.0, submit_time_s=0.0,
              true_runtime_s=end - start, true_power_per_node_w=power)
    rec = JobRecord(job=job)
    rec.start_time_s = start
    rec.end_time_s = end
    rec.nodes = tuple(nodes)
    return rec


def publish_samples(broker, node_id, times, powers):
    broker.publish(
        f"davide/node{node_id}/power/node",
        {"node": node_id, "t": np.asarray(times, float), "p": np.asarray(powers, float)},
    )


class TestSchedulerMonitorPlugin:
    def test_live_view_tracks_latest_sample(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        publish_samples(broker, 0, [0.0, 1.0], [500.0, 800.0])
        publish_samples(broker, 1, [0.5], [1200.0])
        assert plugin.node_power_w(0) == 800.0
        assert plugin.node_power_w(1) == 1200.0
        assert plugin.system_power_w() == 2000.0
        assert plugin.node_power_w(99) == 0.0

    def test_job_start_event_published_and_retained(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        plugin.job_started(make_record(nodes=(0, 1)))
        agent = broker.connect("ea-agent")
        agent.subscribe("davide/jobs/+/start")
        msg = agent.poll()
        assert msg.payload["nodes"] == [0, 1]
        assert msg.payload["user"] == "alice"

    def test_job_energy_summary_from_window_samples(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        rec = make_record(nodes=(0,), start=0.0, end=10.0)
        plugin.job_started(rec)
        # Node 0 reports a flat 1500 W during the job.
        publish_samples(broker, 0, np.linspace(0, 10, 11), np.full(11, 1500.0))
        summary = plugin.job_ended(rec)
        assert summary["measured_energy_j"] == pytest.approx(15000.0)
        assert summary["samples"] == 11

    def test_samples_outside_window_excluded(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        rec = make_record(nodes=(0,), start=5.0, end=10.0)
        plugin.job_started(rec)
        publish_samples(broker, 0, np.linspace(0, 15, 16), np.full(16, 1000.0))
        summary = plugin.job_ended(rec)
        assert summary["measured_energy_j"] == pytest.approx(5000.0)

    def test_samples_before_start_not_collected(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        publish_samples(broker, 0, [0.0, 1.0], [999.0, 999.0])  # before job start
        rec = make_record(nodes=(0,), start=2.0, end=4.0)
        plugin.job_started(rec)
        summary = plugin.job_ended(rec)
        assert summary["measured_energy_j"] == 0.0

    def test_end_event_published(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        rec = make_record()
        plugin.job_started(rec)
        agent = broker.connect("agent")
        agent.subscribe("davide/jobs/+/end")
        plugin.job_ended(rec)
        assert agent.poll().payload["job"] == rec.job.job_id

    def test_unstarted_record_rejected(self):
        plugin = SchedulerMonitorPlugin(MqttBroker())
        rec = JobRecord(job=make_record().job)
        with pytest.raises(ValueError):
            plugin.job_started(rec)
        with pytest.raises(ValueError):
            plugin.job_ended(rec)


class TestGatewayDaemon:
    def test_periodic_publication(self):
        env = Environment()
        broker = MqttBroker(clock=lambda: env.now)
        node = ComputeNode()
        daemon = GatewayDaemon(env, node, broker, period_s=0.1)
        sub = broker.connect("sub")
        sub.subscribe("davide/node0/power/node")
        env.run(until=1.05)
        assert daemon.samples_published == 11  # t = 0.0 .. 1.0
        msgs = sub.drain()
        assert len(msgs) == 11
        assert msgs[-1].payload["t"] == pytest.approx(1.0)

    def test_samples_track_node_state(self):
        env = Environment()
        broker = MqttBroker()
        node = ComputeNode()
        GatewayDaemon(env, node, broker, period_s=0.1, sensor_noise_w=0.0)
        sub = broker.connect("sub")
        sub.subscribe("davide/node0/power/node")
        env.run(until=0.25)
        idle_readings = [m.payload["p"] for m in sub.drain()]
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        env.run(until=0.55)
        busy_readings = [m.payload["p"] for m in sub.drain()]
        assert max(idle_readings) < min(busy_readings)

    def test_validation(self):
        with pytest.raises(ValueError):
            GatewayDaemon(Environment(), ComputeNode(), MqttBroker(), period_s=0.0)


class TestCappingAgent:
    def test_caps_on_overload_and_releases_on_idle(self):
        env = Environment()
        broker = MqttBroker()
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        GatewayDaemon(env, node, broker, period_s=0.05, sensor_noise_w=0.0)
        agent = CappingAgent(env, node, broker, setpoint_w=1500.0, hysteresis_w=100.0)
        env.run(until=1.0)
        assert agent.capped
        assert node.power_w() <= 1500.0 * 1.1
        # Load drops: the agent must release the cap.
        node.set_utilization(cpu=0.1, gpu=0.1, memory_intensity=0.1)
        env.run(until=2.0)
        assert not agent.capped
        assert node.relative_performance() > 0.9

    def test_no_actuation_below_setpoint(self):
        env = Environment()
        broker = MqttBroker()
        node = ComputeNode()  # idle: well below the setpoint
        GatewayDaemon(env, node, broker, period_s=0.05, sensor_noise_w=0.0)
        agent = CappingAgent(env, node, broker, setpoint_w=1800.0)
        env.run(until=1.0)
        assert agent.actuations == 0
        assert not agent.capped

    def test_actuation_delay_observed(self):
        env = Environment()
        broker = MqttBroker()
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        GatewayDaemon(env, node, broker, period_s=0.05, sensor_noise_w=0.0)
        CappingAgent(env, node, broker, setpoint_w=1500.0, actuation_delay_s=0.3)
        env.run(until=0.2)
        assert node.power_cap_w is None  # still inside the actuation delay
        env.run(until=0.5)
        assert node.power_cap_w is not None

    def test_validation(self):
        env, broker, node = Environment(), MqttBroker(), ComputeNode()
        with pytest.raises(ValueError):
            CappingAgent(env, node, broker, setpoint_w=0.0)
        with pytest.raises(ValueError):
            CappingAgent(env, node, broker, setpoint_w=100.0, hysteresis_w=-1.0)
