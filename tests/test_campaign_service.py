"""The campaign service: submit → poll → merged artifact.

Pins the client-visible contract of :class:`CampaignService`: results
match a direct ``run_campaign`` byte for byte, overlapping submissions
replay from the shared store, failures surface through the handle
instead of killing the service, and the whole thing is observable via
the ``campaign`` section of ``ops_report()``.
"""

import pytest

from repro.observability import Observability
from repro.scheduler import (
    CampaignConfig,
    CampaignService,
    DirectoryResultStore,
    Scenario,
    campaign_digest,
    run_campaign,
)

CONFIG = CampaignConfig(n_nodes=8, n_jobs=24, root_seed=5, load_factor=1.1)
CAP = 9e3

GRID = [
    Scenario(policy="fifo", seed_index=0),
    Scenario(policy="easy", cap_w=CAP, seed_index=0),
    Scenario(policy="power-aware", cap_w=CAP, seed_index=1),
]

TIMEOUT = 120.0


class TestSubmitPollResult:
    def test_result_matches_direct_run_campaign(self):
        direct = run_campaign(CONFIG, GRID, processes=1)
        service = CampaignService(processes=1)
        job = service.submit(CONFIG, GRID, label="smoke")
        results = service.result(job, timeout=TIMEOUT)
        assert campaign_digest(results) == campaign_digest(direct)
        assert [r.scenario for r in results] == GRID

    def test_poll_reaches_done_with_full_progress(self):
        service = CampaignService(processes=1)
        job = service.submit(CONFIG, GRID, label="polled")
        assert job.wait(TIMEOUT)
        status = service.poll(job.job_id)
        assert status["state"] == "done"
        assert status["label"] == "polled"
        assert status["total"] == len(GRID)
        assert status["completed"] == len(GRID)
        assert status["simulated"] == len(GRID)
        assert status["replayed"] == 0
        assert status["campaign_digest"]
        assert status["error"] is None

    def test_second_overlapping_submission_replays(self):
        service = CampaignService(processes=1)
        first = service.submit(CONFIG, GRID)
        service.result(first, timeout=TIMEOUT)
        second = service.submit(CONFIG, GRID)
        results = service.result(second, timeout=TIMEOUT)
        status = service.poll(second)
        assert status["replayed"] == len(GRID)
        assert status["simulated"] == 0
        assert campaign_digest(results) == first.status()["campaign_digest"]

    def test_disk_store_backed_service(self, tmp_path):
        store = DirectoryResultStore(tmp_path / "store")
        warm = CampaignService(store=store, processes=1)
        first = warm.submit(CONFIG, GRID)
        warm.result(first, timeout=TIMEOUT)
        # A brand-new service over the same directory starts warm.
        reopened = CampaignService(
            store=DirectoryResultStore(tmp_path / "store"), processes=1)
        job = reopened.submit(CONFIG, GRID)
        reopened.result(job, timeout=TIMEOUT)
        assert reopened.poll(job)["simulated"] == 0

    def test_unknown_job_id_raises(self):
        service = CampaignService(processes=1)
        with pytest.raises(KeyError, match="unknown campaign job"):
            service.job("campaign-9999")

    def test_jobs_lists_all_handles(self):
        service = CampaignService(processes=1)
        a = service.submit(CONFIG, GRID[:1])
        b = service.submit(CONFIG, GRID[1:2])
        assert {j.job_id for j in service.jobs()} == {a.job_id, b.job_id}
        assert a.job_id != b.job_id


class TestFailurePath:
    # split = int(24 * 0.01) = 0 -> "train fraction leaves an empty split"
    BAD = Scenario(policy="power-aware", cap_w=CAP, predictor="ridge",
                   train_fraction=0.01)

    def test_failure_surfaces_through_handle(self):
        service = CampaignService(processes=1)
        job = service.submit(CONFIG, [self.BAD])
        assert job.wait(TIMEOUT)
        status = service.poll(job)
        assert status["state"] == "failed"
        assert "empty split" in status["error"]
        with pytest.raises(RuntimeError, match="failed"):
            service.result(job, timeout=TIMEOUT)

    def test_failed_job_does_not_poison_the_service(self):
        service = CampaignService(processes=1)
        bad = service.submit(CONFIG, [self.BAD])
        assert bad.wait(TIMEOUT)
        good = service.submit(CONFIG, GRID[:1])
        results = service.result(good, timeout=TIMEOUT)
        assert len(results) == 1
        assert service.poll(good)["state"] == "done"


class TestObservability:
    def test_ops_report_campaign_section(self):
        obs = Observability()
        service = CampaignService(observability=obs, processes=1)
        first = service.submit(CONFIG, GRID)
        service.result(first, timeout=TIMEOUT)
        second = service.submit(CONFIG, GRID)
        service.result(second, timeout=TIMEOUT)
        bad = service.submit(CONFIG, [TestFailurePath.BAD])
        bad.wait(TIMEOUT)
        section = obs.ops_report()["campaign"]
        assert section["jobs_submitted"] == 3
        assert section["jobs_completed"] == 2
        assert section["jobs_failed"] == 1
        assert section["cells_completed"] == 2 * len(GRID)
        assert section["cells_simulated"] == len(GRID)
        assert section["cells_replayed"] == len(GRID)
