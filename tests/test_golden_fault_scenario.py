"""Golden-trace regression: one canonical fault drill, pinned end to end.

The checked-in fixture captures the full summary of a fixed scenario —
jobs completed, joules accounted, faults recovered, the SHA-256 of the
canonical event log.  Any behavioural change to the kernel, scheduler,
capping, monitoring or fault layers shows up here as a diff.

Regenerate (after an *intentional* behaviour change) with:

    PYTHONPATH=src python tests/test_golden_fault_scenario.py
"""

import json
from pathlib import Path

from repro.faults import DrillConfig, FaultDrill, FaultKind, FaultSpec

FIXTURE = Path(__file__).parent / "fixtures" / "fault_drill_golden.json"

GOLDEN_CONFIG = DrillConfig(seed=2026)

GOLDEN_CAMPAIGN = [
    FaultSpec(FaultKind.NODE_CRASH, at_s=22.0, duration_s=35.0, target=4),
    FaultSpec(FaultKind.NODE_CRASH, at_s=60.0, duration_s=25.0, target=11),
    FaultSpec(FaultKind.BROKER_OUTAGE, at_s=40.0, duration_s=14.0),
    FaultSpec(FaultKind.PSU_FAILURE, at_s=55.0, duration_s=45.0),
    FaultSpec(FaultKind.SENSOR_DROPOUT, at_s=30.0, duration_s=12.0, target=7),
    FaultSpec(FaultKind.SENSOR_SPIKE, at_s=80.0, duration_s=9.0, target=2, magnitude=2500.0),
    FaultSpec(FaultKind.CLOCK_DRIFT, at_s=35.0, duration_s=30.0, target=13, magnitude=0.08),
]


def run_golden_scenario():
    drill = FaultDrill(GOLDEN_CONFIG)
    report = drill.run(GOLDEN_CAMPAIGN, extra_random_faults=3)
    return report


def test_golden_scenario_matches_fixture():
    golden = json.loads(FIXTURE.read_text())
    report = run_golden_scenario()
    assert report.ok, [str(v) for v in report.checker.violations]
    assert report.summary == golden, (
        "fault-drill behaviour changed; if intentional, regenerate with "
        "`PYTHONPATH=src python tests/test_golden_fault_scenario.py`"
    )


def test_golden_scenario_recovered_everything():
    report = run_golden_scenario()
    assert report.summary["faults_injected"] == report.summary["faults_recovered"]
    assert report.summary["jobs_completed"] == GOLDEN_CONFIG.n_jobs
    assert report.summary["total_requeues"] >= 1
    assert report.summary["violations"] == 0


if __name__ == "__main__":
    summary = run_golden_scenario().summary
    FIXTURE.parent.mkdir(exist_ok=True)
    FIXTURE.write_text(json.dumps(summary, indent=2, sort_keys=True) + "\n")
    print(f"wrote {FIXTURE}")
    print(json.dumps(summary, indent=2, sort_keys=True))
