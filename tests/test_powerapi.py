"""Tests for the Power API façade over the cluster models."""

import pytest

from repro.hardware import Cluster
from repro.monitoring import Attribute, NodeObject, PlatformObject, PwrObject, make_platform


class FakeClock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestHierarchy:
    def test_platform_structure(self):
        cluster = Cluster()
        platform = make_platform(cluster)
        objs = list(platform.walk())
        cabinets = [o for o in objs if o.obj_type == "PWR_OBJ_CABINET"]
        nodes = [o for o in objs if o.obj_type == "PWR_OBJ_NODE"]
        assert len(cabinets) == 3
        assert len(nodes) == 45

    def test_find_by_name(self):
        platform = make_platform(Cluster())
        assert platform.find("node17").obj_type == "PWR_OBJ_NODE"
        assert platform.find("cabinet1").obj_type == "PWR_OBJ_CABINET"
        with pytest.raises(KeyError):
            platform.find("node999")

    def test_supported_attributes(self):
        platform = make_platform(Cluster())
        node = platform.find("node0")
        assert Attribute.POWER in node.supported_attributes()
        assert Attribute.POWER_LIMIT_MAX in node.supported_attributes()
        assert Attribute.POWER in platform.supported_attributes()


class TestReads:
    def test_node_power_reading(self):
        cluster = Cluster()
        platform = make_platform(cluster)
        node_obj = platform.find("node0")
        cluster.node(0).set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        reading = node_obj.get(Attribute.POWER)
        assert reading.value == pytest.approx(cluster.node(0).power_w())

    def test_platform_power_aggregates_nodes(self):
        cluster = Cluster()
        platform = make_platform(cluster)
        total = platform.get(Attribute.POWER).value
        assert total == pytest.approx(sum(n.power_w() for n in cluster.nodes))

    def test_energy_counter_semantics(self):
        clock = FakeClock()
        cluster = Cluster()
        platform = make_platform(cluster, clock)
        node_obj = platform.find("node0")
        p0 = node_obj.get(Attribute.POWER).value
        clock.t = 10.0
        energy = node_obj.get(Attribute.ENERGY)
        assert energy.value == pytest.approx(p0 * 10.0)
        assert energy.timestamp == 10.0
        # Counter keeps accumulating.
        clock.t = 20.0
        assert node_obj.get(Attribute.ENERGY).value == pytest.approx(p0 * 20.0)

    def test_frequency_read(self):
        platform = make_platform(Cluster())
        node_obj = platform.find("node0")
        assert node_obj.get(Attribute.FREQ).value == pytest.approx(4.0e9)

    def test_unlimited_cap_reads_inf(self):
        platform = make_platform(Cluster())
        assert platform.find("node0").get(Attribute.POWER_LIMIT_MAX).value == float("inf")

    def test_unsupported_attribute_raises(self):
        platform = make_platform(Cluster())
        with pytest.raises(AttributeError):
            platform.find("node0").get(Attribute.TEMP)
        with pytest.raises(AttributeError):
            platform.get(Attribute.FREQ)


class TestWrites:
    def test_node_power_limit_actuates_cap(self):
        cluster = Cluster()
        platform = make_platform(cluster)
        node = cluster.node(0)
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        node_obj = platform.find("node0")
        node_obj.set(Attribute.POWER_LIMIT_MAX, 1400.0)
        assert node.power_cap_w == 1400.0
        assert node.power_w() <= 1400.0 * 1.15
        assert node_obj.get(Attribute.POWER_LIMIT_MAX).value == 1400.0

    def test_platform_limit_fans_out(self):
        cluster = Cluster()
        platform = make_platform(cluster)
        cluster.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        platform.set(Attribute.POWER_LIMIT_MAX, 45 * 1200.0)
        # Every node received an equal share through the hierarchy.
        assert all(n.power_cap_w == pytest.approx(1200.0) for n in cluster.nodes)

    def test_frequency_write(self):
        cluster = Cluster()
        platform = make_platform(cluster)
        platform.find("node3").set(Attribute.FREQ, 2.5e9)
        assert all(c.frequency_hz >= 2.5e9 for c in cluster.node(3).cpus)

    def test_unsupported_write_raises(self):
        platform = make_platform(Cluster())
        with pytest.raises(AttributeError):
            platform.find("node0").set(Attribute.ENERGY, 0.0)
        bare = PwrObject("x", "PWR_OBJ_CORE")
        with pytest.raises(AttributeError):
            bare.set(Attribute.POWER_LIMIT_MAX, 1.0)

    def test_energy_accounted_up_to_actuation(self):
        clock = FakeClock()
        cluster = Cluster()
        platform = make_platform(cluster, clock)
        node = cluster.node(0)
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        node_obj = platform.find("node0")
        p_full = node.power_w()
        clock.t = 10.0
        node_obj.set(Attribute.POWER_LIMIT_MAX, 1200.0)  # accrues first 10 s at full power
        clock.t = 20.0
        energy = node_obj.get(Attribute.ENERGY).value
        expected = p_full * 10.0 + node.power_w() * 10.0
        assert energy == pytest.approx(expected, rel=1e-6)
