"""Tests for sensor calibration and architectural-event correlation."""

import numpy as np
import pytest

from repro.apps import ExecutionPlatform, nemo, quantum_espresso
from repro.power import (
    Calibration,
    PowerTrace,
    SHUNT_SENSOR,
    PowerSensor,
    calibrate,
    trace_from_function,
    verification_error,
)
from repro.telemetry import EventCorrelator, EventTrace, events_from_execution


def chain_with_errors(gain_err=0.03, offset=12.0, noise=1.0, seed=0):
    """A measurement chain with known systematic errors."""
    rng = np.random.default_rng(seed)

    def measure(true_w: float) -> float:
        return true_w * (1.0 + gain_err) + offset + float(rng.normal(0, noise))

    return measure


class TestCalibration:
    def test_recovers_affine_errors(self):
        measure = chain_with_errors()
        cal = calibrate(measure, reference_loads_w=[200, 600, 1000, 1400, 1800], readings_per_point=10)
        # The correction inverts the chain: gain ~ 1/1.03, offset ~ -12/1.03.
        assert cal.gain == pytest.approx(1 / 1.03, rel=0.01)
        report = verification_error(measure, cal, check_loads_w=[400, 900, 1600])
        assert report["worst_relative_error"] < 0.01

    def test_uncalibrated_chain_fails_the_same_check(self):
        measure = chain_with_errors()
        identity = Calibration(gain=1.0, offset_w=0.0, residual_rms_w=0.0, n_points=0)
        report = verification_error(measure, identity, check_loads_w=[400, 900, 1600])
        assert report["worst_relative_error"] > 0.03

    def test_correct_trace(self):
        cal = Calibration(gain=2.0, offset_w=5.0, residual_rms_w=0.0, n_points=2)
        trace = PowerTrace(np.array([0.0, 1.0]), np.array([10.0, 20.0]))
        out = cal.correct_trace(trace)
        assert np.allclose(out.power_w, [25.0, 45.0])

    def test_reduces_real_sensor_error(self):
        sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(1))

        def measure(true_w):
            truth = trace_from_function(lambda t: np.full_like(t, true_w), 0.002, 1e6)
            return sensor.measure(truth).mean_power_w()

        cal = calibrate(measure, [300, 800, 1300, 1800], readings_per_point=3)
        report = verification_error(measure, cal, [500, 1000, 1500])
        assert report["worst_relative_error"] < 0.005

    def test_validation(self):
        measure = chain_with_errors()
        with pytest.raises(ValueError):
            calibrate(measure, [100.0])
        with pytest.raises(ValueError):
            calibrate(measure, [100.0, 100.0])
        with pytest.raises(ValueError):
            calibrate(measure, [100.0, 200.0], readings_per_point=0)
        cal = calibrate(measure, [100.0, 200.0])
        with pytest.raises(ValueError):
            verification_error(measure, cal, [])


class TestEventTraces:
    def test_validation(self):
        with pytest.raises(ValueError):
            EventTrace("x", np.array([0.0, 1.0]), np.array([1.0]))
        with pytest.raises(ValueError):
            EventTrace("x", np.array([1.0, 0.5]), np.array([1.0, 2.0]))

    def test_events_from_execution_structure(self):
        report = ExecutionPlatform.gpu_nvlink().run(quantum_espresso(scale=0.5, n_iterations=10), n_nodes=2)
        events = events_from_execution(report, iterations=3)
        assert set(events) == {"flops_rate", "membw_rate", "comm_active"}
        assert len(events["flops_rate"]) > 0
        assert events["comm_active"].rates.max() == 1.0  # comm phases exist

    def test_mean_rate(self):
        ev = EventTrace("x", np.array([0.0, 1.0, 2.0]), np.array([0.0, 2.0, 2.0]))
        assert 0.0 < ev.mean_rate() <= 2.0


class TestEventCorrelator:
    def synthetic_pair(self):
        # Power follows the counter plus a floor and noise.
        rng = np.random.default_rng(0)
        t = np.linspace(0, 10, 500)
        rate = np.where((t % 2) < 1, 1e12, 1e11)
        power = 600.0 + rate * 8e-10 + rng.normal(0, 5, t.size)
        return EventTrace("flops_rate", t, rate), PowerTrace(t, power)

    def test_correlation_finds_the_driver(self):
        event, power = self.synthetic_pair()
        corr = EventCorrelator(power)
        assert corr.correlation(event) > 0.98
        # An unrelated counter shows ~no correlation.
        rng = np.random.default_rng(1)
        noise_ev = EventTrace("noise", event.times_s, rng.normal(0, 1, len(event)))
        assert abs(corr.correlation(noise_ev)) < 0.2

    def test_explain_ranks_by_strength(self):
        event, power = self.synthetic_pair()
        rng = np.random.default_rng(2)
        noise_ev = EventTrace("noise", event.times_s, rng.normal(0, 1, len(event)))
        ranked = EventCorrelator(power).explain({"flops": event, "noise": noise_ev})
        assert list(ranked)[0] == "flops"

    def test_watts_per_event_regression(self):
        event, power = self.synthetic_pair()
        a, b = EventCorrelator(power).watts_per_event(event)
        assert a == pytest.approx(8e-10, rel=0.05)
        assert b == pytest.approx(600.0, rel=0.05)

    def test_qe_power_tracks_compute_phases(self):
        # End to end: the QE run's power correlates with its flops counter.
        report = ExecutionPlatform.gpu_nvlink().run(quantum_espresso(scale=0.5, n_iterations=10), n_nodes=2)
        power = report.power_trace(iterations=5)
        events = events_from_execution(report, iterations=5)
        scores = EventCorrelator(power).explain(events)
        # Power is GPU-phase-dominated: the flops counter explains it
        # better than the comm-activity flag is anticorrelated.
        assert scores["flops_rate"] > 0.3

    def test_validation(self):
        _, power = self.synthetic_pair()
        corr = EventCorrelator(power)
        with pytest.raises(ValueError):
            EventCorrelator(PowerTrace(np.array([0.0, 1.0]), np.array([1.0, 2.0])))
        with pytest.raises(ValueError):
            corr.explain({})
        far = EventTrace("far", np.array([100.0, 101.0]), np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            corr.correlation(far)
