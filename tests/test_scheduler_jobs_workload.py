"""Tests for the job model and the synthetic workload generator."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler import (
    DEFAULT_APP_MIX,
    Job,
    JobRecord,
    JobState,
    WorkloadConfig,
    WorkloadGenerator,
)


def make_job(**kw):
    defaults = dict(
        job_id=1, user="u", app="qe", n_nodes=2, walltime_req_s=3600.0,
        submit_time_s=0.0, true_runtime_s=1800.0, true_power_per_node_w=1500.0,
    )
    defaults.update(kw)
    return Job(**defaults)


class TestJob:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_job(n_nodes=0)
        with pytest.raises(ValueError):
            make_job(walltime_req_s=0.0)
        with pytest.raises(ValueError):
            make_job(true_runtime_s=-1.0)
        with pytest.raises(ValueError):
            make_job(submit_time_s=-1.0)

    def test_derived_quantities(self):
        job = make_job()
        assert job.true_power_w == 3000.0
        assert job.node_seconds_requested == 7200.0

    def test_runtime_stretch(self):
        job = make_job()
        stretched = job.with_runtime_stretch(1.5)
        assert stretched.true_runtime_s == pytest.approx(2700.0)
        with pytest.raises(ValueError):
            job.with_runtime_stretch(0.9)


class TestJobRecord:
    def test_lifecycle_metrics(self):
        rec = JobRecord(job=make_job(submit_time_s=100.0))
        with pytest.raises(ValueError):
            _ = rec.wait_time_s
        rec.start_time_s = 400.0
        rec.end_time_s = 2200.0
        assert rec.wait_time_s == 300.0
        assert rec.turnaround_s == 2100.0
        assert rec.actual_runtime_s == 1800.0

    def test_bounded_slowdown(self):
        rec = JobRecord(job=make_job(submit_time_s=0.0))
        rec.start_time_s = 1800.0
        rec.end_time_s = 3600.0
        assert rec.bounded_slowdown() == pytest.approx(2.0)
        # Tiny job: threshold bounds the metric.
        quick = JobRecord(job=make_job(true_runtime_s=1.0))
        quick.start_time_s = 0.0
        quick.end_time_s = 1.0
        assert quick.bounded_slowdown(threshold_s=10.0) == pytest.approx(1.0)

    def test_initial_state(self):
        rec = JobRecord(job=make_job())
        assert rec.state is JobState.PENDING
        assert rec.stretch == 1.0


class TestWorkloadGenerator:
    def test_deterministic_per_seed(self):
        a = WorkloadGenerator(rng=np.random.default_rng(5)).generate()
        b = WorkloadGenerator(rng=np.random.default_rng(5)).generate()
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.true_power_per_node_w for j in a] == [j.true_power_per_node_w for j in b]

    def test_jobs_sorted_by_submit_time(self):
        jobs = WorkloadGenerator(rng=np.random.default_rng(0)).generate()
        submits = [j.submit_time_s for j in jobs]
        assert submits == sorted(submits)

    def test_walltime_requests_cover_true_runtime(self):
        jobs = WorkloadGenerator(rng=np.random.default_rng(1)).generate()
        # Requests over-estimate (or hit the walltime ceiling).
        cfg = WorkloadConfig()
        for j in jobs:
            assert j.walltime_req_s >= min(j.true_runtime_s, cfg.max_walltime_s) * 0.999

    def test_node_counts_are_powers_of_two_capped(self):
        jobs = WorkloadGenerator(rng=np.random.default_rng(2)).generate()
        for j in jobs:
            assert j.n_nodes in (1, 2, 4, 8, 16, 45)

    def test_power_reflects_app_mix(self):
        cfg = WorkloadConfig(n_jobs=600)
        jobs = WorkloadGenerator(cfg, rng=np.random.default_rng(3)).generate()
        by_app = {}
        for j in jobs:
            by_app.setdefault(j.app, []).append(j.true_power_per_node_w)
        # NEMO (bandwidth-bound) draws visibly less than BQCD (GPU-saturated).
        assert np.mean(by_app["nemo"]) < np.mean(by_app["bqcd"]) - 200.0

    def test_power_within_physical_bounds(self):
        jobs = WorkloadGenerator(rng=np.random.default_rng(4)).generate()
        for j in jobs:
            assert 400.0 <= j.true_power_per_node_w <= 2100.0

    def test_app_mix_weights_respected(self):
        cfg = WorkloadConfig(n_jobs=2000)
        jobs = WorkloadGenerator(cfg, rng=np.random.default_rng(6)).generate()
        counts = {name: 0 for name in DEFAULT_APP_MIX}
        for j in jobs:
            counts[j.app] += 1
        assert counts["qe"] / len(jobs) == pytest.approx(0.30, abs=0.05)
        assert counts["nemo"] / len(jobs) == pytest.approx(0.25, abs=0.05)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(n_jobs=0)
        with pytest.raises(ValueError):
            WorkloadConfig(load_factor=0.0)

    @settings(max_examples=10, deadline=None)
    @given(st.floats(min_value=0.3, max_value=1.5))
    def test_load_factor_scales_arrival_density(self, load):
        base = WorkloadGenerator(
            WorkloadConfig(n_jobs=100, load_factor=0.5), rng=np.random.default_rng(7)
        ).generate()
        scaled = WorkloadGenerator(
            WorkloadConfig(n_jobs=100, load_factor=load), rng=np.random.default_rng(7)
        ).generate()
        # Higher load factor => jobs packed into a shorter span.
        ratio = base[-1].submit_time_s / scaled[-1].submit_time_s
        assert ratio == pytest.approx(load / 0.5, rel=0.01)
