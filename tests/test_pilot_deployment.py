"""Integration test: the full Section-I deployment roadmap.

Burn-in -> air-cooled baseline -> liquid conversion -> production
acceptance, across all subsystems at once.
"""

import pytest

from repro.cooling import (
    AIR_COOLED_GPU,
    LIQUID_COOLED_GPU,
    ThrottleGovernor,
    heat_split_for_rack,
)
from repro.hardware import BurnInSuite, Cluster, RackManagementController


@pytest.fixture(scope="module")
def cluster():
    return Cluster()


class TestDeploymentRoadmap:
    def test_stage1_every_node_passes_burn_in(self, cluster):
        suite = BurnInSuite()
        reports = [suite.run(node) for node in cluster.nodes]
        assert all(r.passed for r in reports)
        assert len(reports) == 45

    def test_stage2_air_baseline_throttles(self):
        gov = ThrottleGovernor()
        air = gov.run(AIR_COOLED_GPU(28.0), 300.0, duration_s=1800.0)
        assert air.throttled_fraction > 0.3
        assert air.mean_performance_fraction < 1.0

    def test_stage3_liquid_conversion_restores_performance(self):
        gov = ThrottleGovernor()
        air = gov.run(AIR_COOLED_GPU(28.0), 300.0, duration_s=1800.0)
        liquid = gov.run(LIQUID_COOLED_GPU(35.0), 300.0, duration_s=1800.0)
        assert liquid.mean_performance_fraction == pytest.approx(1.0)
        assert liquid.mean_performance_fraction > air.mean_performance_fraction

    def test_stage4_production_acceptance(self, cluster):
        for node in cluster.nodes:
            node.apply_power_cap(None)
            node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        rmcs = [RackManagementController(rack) for rack in cluster.racks]
        for rmc in rmcs:
            rmc.optimize_fans()
        # Envelope, feeds, exhaust target, efficiency — all at once.
        assert cluster.facility_power_w() < 100e3
        for rmc in rmcs:
            health = rmc.health_summary()
            assert health["within_feed"]
            assert health["exhaust_temp_c"] <= 45.5
        assert cluster.energy_efficiency_flops_per_w() > 9.5e9
        split = heat_split_for_rack(cluster.racks[0])
        assert 0.70 <= split.liquid_fraction <= 0.82
        for node in cluster.nodes:
            node.idle()
