"""Tests for clock models, PTP and NTP synchronization."""

import numpy as np
import pytest

from repro.timesync import (
    HW_TIMESTAMPING,
    SW_TIMESTAMPING,
    TCXO,
    XO_CHEAP,
    DisciplinedClock,
    LocalClock,
    NtpClient,
    PtpSlave,
)


class TestLocalClock:
    def test_free_running_clock_drifts(self):
        clock = LocalClock(XO_CHEAP, rng=np.random.default_rng(1))
        e0 = abs(clock.error_s(0.0))
        e1 = abs(clock.error_s(600.0))
        # With ~30 ppm drift, 10 minutes accumulates ~18 ms on top of the
        # initial offset; the error must grow well beyond jitter scale.
        assert abs(e1 - e0) > 1e-3

    def test_deterministic_per_seed(self):
        a = LocalClock(XO_CHEAP, rng=np.random.default_rng(3))
        b = LocalClock(XO_CHEAP, rng=np.random.default_rng(3))
        assert a.read(10.0) == b.read(10.0)

    def test_tcxo_drifts_less_than_cheap_xo(self):
        errs_cheap, errs_tcxo = [], []
        for seed in range(8):
            cheap = LocalClock(XO_CHEAP, rng=np.random.default_rng(seed), initial_offset_s=0.0)
            tcxo = LocalClock(TCXO, rng=np.random.default_rng(seed), initial_offset_s=0.0)
            errs_cheap.append(abs(cheap.error_s(100.0)))
            errs_tcxo.append(abs(tcxo.error_s(100.0)))
        assert np.mean(errs_tcxo) < np.mean(errs_cheap)

    def test_explicit_initial_offset(self):
        clock = LocalClock(TCXO, rng=np.random.default_rng(0), initial_offset_s=0.5)
        assert clock.error_s(0.0) == pytest.approx(0.5, abs=1e-3)


class TestDisciplinedClock:
    def test_servo_offset_correction(self):
        local = LocalClock(XO_CHEAP, rng=np.random.default_rng(0), initial_offset_s=0.01)
        disc = DisciplinedClock(local)
        raw_err = disc.error_s(1.0)
        disc.apply_servo(raw_err, 0.0, 1.0)
        assert abs(disc.error_s(1.0)) < abs(raw_err)
        assert disc.corrections_applied == 1

    def test_rate_correction_counters_drift(self):
        local = LocalClock(XO_CHEAP, rng=np.random.default_rng(5), initial_offset_s=0.0)
        disc = DisciplinedClock(local)
        # Perfect knowledge correction: offset at t=0 and the true drift.
        disc.apply_servo(disc.error_s(0.0), local.drift, 0.0)
        assert abs(disc.error_s(50.0)) < abs(local.error_s(50.0))


class TestPtp:
    def test_hw_timestamping_reaches_sub_10us(self):
        local = LocalClock(XO_CHEAP, rng=np.random.default_rng(0))
        slave = PtpSlave(local, HW_TIMESTAMPING, sync_interval_s=1.0, rng=np.random.default_rng(1))
        assert slave.steady_state_error_s(duration_s=120.0) < 10e-6

    def test_sw_timestamping_much_worse(self):
        local_hw = LocalClock(XO_CHEAP, rng=np.random.default_rng(0))
        local_sw = LocalClock(XO_CHEAP, rng=np.random.default_rng(0))
        hw = PtpSlave(local_hw, HW_TIMESTAMPING, rng=np.random.default_rng(1))
        sw = PtpSlave(local_sw, SW_TIMESTAMPING, rng=np.random.default_rng(1))
        assert sw.steady_state_error_s(60.0) > hw.steady_state_error_s(60.0) * 3

    def test_exchange_estimates_offset_sign(self):
        # A clock 10 ms fast must yield a ~+10 ms offset estimate.
        local = LocalClock(TCXO, rng=np.random.default_rng(2), initial_offset_s=0.01)
        slave = PtpSlave(local, HW_TIMESTAMPING, rng=np.random.default_rng(3))
        ex = slave.exchange(0.0)
        assert ex.offset_estimate_s == pytest.approx(0.01, abs=1e-4)

    def test_delay_estimate_near_true_path_delay(self):
        local = LocalClock(TCXO, rng=np.random.default_rng(2), initial_offset_s=0.0)
        slave = PtpSlave(local, HW_TIMESTAMPING, rng=np.random.default_rng(3))
        ex = slave.exchange(0.0)
        assert ex.delay_estimate_s == pytest.approx(HW_TIMESTAMPING.mean_delay_s, rel=0.5)

    def test_history_recorded(self):
        local = LocalClock(XO_CHEAP, rng=np.random.default_rng(0))
        slave = PtpSlave(local, rng=np.random.default_rng(1))
        slave.synchronize(10.0)
        assert len(slave.history) == 10

    def test_validation(self):
        local = LocalClock()
        with pytest.raises(ValueError):
            PtpSlave(local, sync_interval_s=0.0)
        slave = PtpSlave(LocalClock())
        with pytest.raises(ValueError):
            slave.synchronize(0.0)


class TestNtp:
    def test_ntp_converges_but_coarser_than_ptp(self):
        local_ntp = LocalClock(XO_CHEAP, rng=np.random.default_rng(4))
        local_ptp = LocalClock(XO_CHEAP, rng=np.random.default_rng(4))
        ntp = NtpClient(local_ntp, poll_interval_s=16.0, rng=np.random.default_rng(5))
        ptp = PtpSlave(local_ptp, HW_TIMESTAMPING, rng=np.random.default_rng(5))
        ntp_err = ntp.steady_state_error_s(duration_s=1600.0)
        ptp_err = ptp.steady_state_error_s(duration_s=120.0)
        assert ntp_err > ptp_err * 5
        # But NTP still beats the free-running clock by a wide margin.
        free = LocalClock(XO_CHEAP, rng=np.random.default_rng(4))
        assert ntp_err < abs(free.error_s(1600.0))

    def test_offset_sign_matches_clock_error(self):
        local = LocalClock(TCXO, rng=np.random.default_rng(6), initial_offset_s=0.02)
        ntp = NtpClient(local, rng=np.random.default_rng(7))
        ex = ntp.exchange(0.0)
        assert ex.offset_estimate_s == pytest.approx(0.02, abs=2e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NtpClient(LocalClock(), poll_interval_s=0.0)
        with pytest.raises(ValueError):
            NtpClient(LocalClock(), filter_depth=0)
        client = NtpClient(LocalClock())
        with pytest.raises(ValueError):
            client.synchronize(-1.0)
