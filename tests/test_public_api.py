"""Public-API integrity: every exported name resolves and is documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "analysis", "apps", "capping", "cooling", "core", "energyapi", "hardware",
    "monitoring", "network", "power", "prediction", "scheduler", "sim",
    "telemetry", "timesync",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_subpackage_importable(name):
    mod = importlib.import_module(f"repro.{name}")
    assert mod.__doc__, f"repro.{name} lacks a module docstring"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_all_exports_resolve(name):
    mod = importlib.import_module(f"repro.{name}")
    assert hasattr(mod, "__all__"), f"repro.{name} lacks __all__"
    for export in mod.__all__:
        assert hasattr(mod, export), f"repro.{name}.__all__ lists missing {export!r}"


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_public_classes_and_functions_documented(name):
    mod = importlib.import_module(f"repro.{name}")
    undocumented = []
    for export in getattr(mod, "__all__", []):
        obj = getattr(mod, export)
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if not inspect.getdoc(obj):
                undocumented.append(export)
    assert not undocumented, f"repro.{name}: undocumented public items {undocumented}"


def test_top_level_exports():
    for export in repro.__all__:
        assert hasattr(repro, export)
    assert repro.__version__ == "1.0.0"


def test_public_methods_documented_in_core_types():
    """Spot-check: every public method on the façade types has a docstring."""
    from repro.core import DavideSystem
    from repro.monitoring import EnergyGateway, MqttBroker
    from repro.power import PowerTrace
    from repro.scheduler import ClusterSimulator

    for cls in (DavideSystem, EnergyGateway, MqttBroker, PowerTrace, ClusterSimulator):
        for name, member in inspect.getmembers(cls, predicate=inspect.isfunction):
            if name.startswith("_"):
                continue
            assert inspect.getdoc(member), f"{cls.__name__}.{name} lacks a docstring"
