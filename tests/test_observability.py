"""The observability layer: metrics, tracing, exporters, and wiring.

Three contracts under test:

1. **Instrument semantics** — counters/gauges/histograms with labeled
   series, span trees on the sim clock, canonical exporters.
2. **Determinism** — observability is a side store.  At equal seeds the
   drill's telemetry log digest is *byte-identical* with instrumentation
   on or off; two identically-driven registries export identical text.
3. **Reconciliation** — :meth:`Observability.ops_report` counts agree
   exactly with the event log (publishes, scheduler decisions, cap
   actuations, requeues) — the metrics never drift from the truth.
"""

import json

import pytest

from repro.cluster import ClusterBuilder
from repro.faults import DrillConfig, FaultDrill, FaultKind, FaultSpec
from repro.observability import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    NullMetricsRegistry,
    NullTracer,
    Observability,
    Tracer,
    metrics_to_jsonl,
    null_observability,
    spans_to_jsonl,
    to_prometheus_text,
)

CAMPAIGN = [
    FaultSpec(FaultKind.NODE_CRASH, at_s=20.0, duration_s=30.0, target=2),
    FaultSpec(FaultKind.BROKER_OUTAGE, at_s=45.0, duration_s=12.0),
    FaultSpec(FaultKind.SENSOR_SPIKE, at_s=70.0, duration_s=8.0, target=4, magnitude=2000.0),
]


def _drill_config(observability, n_nodes=8, **over):
    fields = dict(
        seed=42, n_nodes=n_nodes, n_jobs=10, power_budget_w=1000.0 * n_nodes,
        submit_horizon_s=60.0, batched_telemetry=True, observability=observability,
    )
    fields.update(over)
    return DrillConfig(**fields)


# --------------------------------------------------------------------- metrics
class TestMetrics:
    def test_counter_inc_and_reject_negative(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_labeled_series_are_distinct_and_get_or_create(self):
        reg = MetricsRegistry()
        a = reg.counter("drops_total", reason="sensor")
        b = reg.counter("drops_total", reason="buffer")
        assert a is not b
        a.inc(3)
        assert reg.counter("drops_total", reason="sensor") is a
        assert reg.value("drops_total", reason="sensor") == 3
        assert reg.total("drops_total") == 3
        b.inc(2)
        assert reg.total("drops_total") == 5

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("backlog")
        g.set(7.0)
        g.inc(-2.0)
        assert g.value == 5.0

    def test_histogram_buckets_and_mean(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", bounds=(0.1, 1.0))
        for x in (0.05, 0.5, 0.5, 5.0):
            h.observe(x)
        assert h.count == 4
        assert h.sum == pytest.approx(6.05)
        assert h.mean == pytest.approx(6.05 / 4)
        # Per-bucket counts: <=0.1, <=1.0, then the implicit +Inf bucket.
        assert h.bucket_counts == [1, 2, 1]

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(TypeError):
            reg.gauge("x_total")

    def test_snapshot_is_sorted_and_stable(self):
        reg = MetricsRegistry()
        reg.counter("b_total", zone="2").inc()
        reg.counter("b_total", zone="1").inc()
        reg.gauge("a").set(1.0)
        snap = reg.snapshot()
        assert list(snap) == sorted(snap)
        assert snap == reg.snapshot()

    def test_null_registry_is_inert(self):
        reg = NullMetricsRegistry()
        assert not reg.enabled
        c = reg.counter("anything")
        c.inc(100)
        assert len(reg) == 0
        assert reg.snapshot() == {}
        # Shared instruments: no per-call allocation.
        assert reg.counter("a") is reg.counter("b")


# --------------------------------------------------------------------- tracing
class TestTracer:
    def test_span_nesting_sets_parents(self):
        t = 0.0
        tracer = Tracer(clock=lambda: t)
        with tracer.span("outer") as outer:
            t = 1.0
            with tracer.span("inner") as inner:
                t = 2.0
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        assert outer.t_start_s == 0.0 and outer.t_end_s == 2.0
        assert inner.duration_s == 1.0

    def test_record_appends_finished_span_without_stack(self):
        t = 5.0
        tracer = Tracer(clock=lambda: t)
        with tracer.span("tick"):
            tracer.record("async.work", 1.0, node=3)
        (work,) = tracer.named("async.work")
        assert work.t_start_s == 1.0 and work.t_end_s == 5.0
        assert work.attrs["node"] == 3
        # record() must not parent to the open tick implicitly unless asked.
        assert work.parent_id is None

    def test_bounded_retention_counts_drops(self):
        tracer = Tracer(clock=lambda: 0.0, max_spans=4)
        for i in range(10):
            tracer.record(f"s{i}", 0.0)
        assert len(tracer) == 4
        assert tracer.dropped == 6
        assert tracer.started == 10

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        with tracer.span("x") as span:
            span.set(a=1)
        tracer.record("y", 0.0)
        assert not tracer.enabled
        assert len(tracer) == 0


# ------------------------------------------------------------------- exporters
class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("jobs_total", user="alice").inc(3)
        reg.gauge("depth").set(2.5)
        h = reg.histogram("lat_seconds", bounds=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        return reg

    def test_prometheus_text_shape(self):
        text = to_prometheus_text(self._populated())
        assert '# TYPE jobs_total counter' in text
        assert 'jobs_total{user="alice"} 3' in text
        assert '# TYPE lat_seconds histogram' in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert 'lat_seconds_count 2' in text
        assert 'depth 2.5' in text

    def test_jsonl_round_trips(self):
        lines = metrics_to_jsonl(self._populated()).splitlines()
        rows = [json.loads(line) for line in lines]
        assert {r["name"] for r in rows} == {"jobs_total", "depth", "lat_seconds"}

    def test_identical_inputs_export_identically(self):
        assert to_prometheus_text(self._populated()) == to_prometheus_text(self._populated())
        assert metrics_to_jsonl(self._populated()) == metrics_to_jsonl(self._populated())

    def test_span_jsonl(self):
        t = 0.0
        obs = Observability(clock=lambda: t)
        with obs.tracer.span("a"):
            t = 1.0
        rows = [json.loads(line) for line in spans_to_jsonl(obs.tracer).splitlines()]
        assert rows[0]["name"] == "a"
        assert rows[0]["t1"] == 1.0


# ------------------------------------------------------------------ facade
class TestObservabilityFacade:
    def test_disabled_singleton_is_shared_and_inert(self):
        a = null_observability()
        b = null_observability()
        assert a is b
        assert not a.enabled
        assert a.ops_report()["tracing"]["spans_started"] == 0

    def test_default_buckets_exported(self):
        assert DEFAULT_BUCKETS[0] < DEFAULT_BUCKETS[-1]

    def test_ops_report_sections(self):
        report = Observability().ops_report()
        for section in ("telemetry", "broker", "tsdb", "predictor",
                        "scheduler", "capping", "invariants", "tracing"):
            assert section in report


# ---------------------------------------------------------------- determinism
class TestDrillDigestUnchanged:
    def test_small_drill_byte_identical_with_and_without(self):
        runs = {}
        for flag in (False, True):
            drill = FaultDrill(_drill_config(observability=flag))
            runs[flag] = drill.run(CAMPAIGN, extra_random_faults=3)
        assert runs[True].log.to_jsonl() == runs[False].log.to_jsonl()
        assert runs[True].log.digest() == runs[False].log.digest()
        assert runs[True].summary == runs[False].summary

    def test_256_node_drill_byte_identical(self):
        digests = {}
        for flag in (False, True):
            drill = FaultDrill(_drill_config(observability=flag, n_nodes=256,
                                             n_jobs=24, job_nodes_max=8))
            digests[flag] = drill.run(CAMPAIGN, extra_random_faults=2).log.digest()
        assert digests[True] == digests[False]

    def test_unbatched_daemons_byte_identical(self):
        digests = {}
        for flag in (False, True):
            drill = FaultDrill(_drill_config(observability=flag, batched_telemetry=False))
            digests[flag] = drill.run(CAMPAIGN).log.digest()
        assert digests[True] == digests[False]


# -------------------------------------------------------------- reconciliation
class TestOpsReportReconciliation:
    @pytest.fixture(scope="class")
    def drill_and_report(self):
        drill = FaultDrill(_drill_config(observability=True, n_nodes=16, n_jobs=16))
        report = drill.run(CAMPAIGN, extra_random_faults=3)
        return drill, report

    def test_scheduler_counts_match_event_log(self, drill_and_report):
        drill, report = drill_and_report
        counts = report.log.counts()
        ops = drill.ops_report()
        assert ops["scheduler"]["jobs_started"] == counts.get("job_start", 0)
        assert ops["scheduler"]["decisions"] == counts.get("job_start", 0)
        assert ops["scheduler"]["jobs_completed"] == counts.get("job_end", 0)
        assert ops["scheduler"]["jobs_requeued"] == counts.get("job_requeued", 0)

    def test_cap_actuations_match_event_log(self, drill_and_report):
        drill, report = drill_and_report
        counts = report.log.counts()
        ops = drill.ops_report()
        assert ops["capping"]["actuations"] == (
            counts.get("trim", 0) + counts.get("cap_change", 0)
        )
        assert ops["capping"]["failsafe_engagements"] == counts.get("failsafe_on", 0)

    def test_broker_counts_match_broker_truth(self, drill_and_report):
        drill, _ = drill_and_report
        ops = drill.ops_report()
        assert ops["broker"]["published"] == drill.broker.published_count
        assert ops["broker"]["delivered"] == drill.broker.delivered_count
        assert ops["broker"]["rejected"] == drill.broker.rejected_count

    def test_invariant_checks_traced(self, drill_and_report):
        drill, _ = drill_and_report
        ops = drill.ops_report()
        assert ops["invariants"]["checks"] == len(drill.obs.tracer.named("invariant.check"))
        assert ops["invariants"]["checks"] > 0
        assert ops["invariants"]["violations"] == 0

    def test_kernel_section_present(self, drill_and_report):
        drill, _ = drill_and_report
        ops = drill.ops_report()
        assert ops["kernel"]["events_dispatched"] > 0
        assert ops["kernel"]["sim_time_s"] > 0

    def test_exports_nonempty(self, drill_and_report):
        drill, _ = drill_and_report
        assert "telemetry_samples_total" in drill.obs.prometheus_text()
        assert drill.obs.metrics_jsonl()
        assert drill.obs.spans_jsonl("gateway.tick")


# --------------------------------------------------------------------- builder
class TestBuilderWiring:
    def test_live_cluster_exposes_metrics_and_trace(self):
        live = (ClusterBuilder(n_nodes=4, seed=7)
                .with_gateways(period_s=0.1, batched=True)
                .with_capping(cap_w=1500.0)
                .with_observability()
                .build_live())
        live.run(until=2.0)
        assert live.obs.enabled
        assert live.metrics().total("telemetry_samples_total") > 0
        assert len(live.trace()) > 0
        ops = live.ops_report()
        assert ops["broker"]["published"] == live.broker.published_count
        assert ops["kernel"]["sim_time_s"] == pytest.approx(2.0)

    def test_disabled_by_default(self):
        live = (ClusterBuilder(n_nodes=2, seed=7)
                .with_gateways(period_s=0.1)
                .build_live())
        live.run(until=1.0)
        assert not live.obs.enabled
        assert len(live.metrics()) == 0
        assert len(live.trace()) == 0

    def test_drill_flag_maps_through(self):
        assert ClusterBuilder(n_nodes=4).with_observability().build_drill().obs.enabled
        assert not ClusterBuilder(n_nodes=4).build_drill().obs.enabled

    def test_live_results_identical_with_and_without(self):
        def final_power(enabled):
            b = (ClusterBuilder(n_nodes=4, seed=3)
                 .with_gateways(period_s=0.1, batched=True)
                 .with_capping(cap_w=1200.0))
            if enabled:
                b = b.with_observability()
            live = b.build_live()
            live.run(until=3.0)
            return live.total_power_w, live.broker.published_count

        assert final_power(True) == final_power(False)
