"""Tests for the rack management controller and the burn-in suite."""

import pytest

from repro.hardware import (
    BurnInSuite,
    ComputeNode,
    Rack,
    RackManagementController,
)


class TestAssetManagement:
    def test_inventory_complete(self):
        rmc = RackManagementController(Rack(rack_id=1))
        assert len(rmc.inventory("node")) == 15
        assert len(rmc.inventory("psu")) == 6
        assert len(rmc.inventory("fan")) == 3
        assert len(rmc.inventory("controller")) == 1
        assert len(rmc.inventory()) == 25

    def test_asset_tags_encode_rack_and_node(self):
        rmc = RackManagementController(Rack(rack_id=2))
        asset = rmc.find_asset("R2-N30")  # rack 2's first node (global id 30)
        assert asset.kind == "node"
        with pytest.raises(KeyError):
            rmc.find_asset("R9-N1")

    def test_health_summary_fields(self):
        rmc = RackManagementController(Rack())
        summary = rmc.health_summary()
        assert summary["assets"] == 25
        assert summary["within_feed"]
        assert summary["nodes_off"] == 0


class TestFanOptimization:
    def test_optimizer_meets_exhaust_target(self):
        rack = Rack()
        for n in rack.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        rmc = RackManagementController(rack, inlet_temp_c=25.0, target_exhaust_c=45.0)
        fraction = rmc.optimize_fans()
        assert rmc.exhaust_temp_c() <= 45.0 + 0.5
        # And not wastefully fast: a notch slower would miss the target.
        if fraction < 1.0 and fraction > 0.11:
            assert rmc.exhaust_temp_c(fraction * 0.9) > 45.0

    def test_idle_rack_runs_fans_slow(self):
        rack = Rack()
        rmc = RackManagementController(rack)
        busy_fraction_ref = 0.8
        idle_fraction = rmc.optimize_fans()
        assert idle_fraction < busy_fraction_ref

    def test_fan_speed_scales_with_load(self):
        rack = Rack()
        rmc = RackManagementController(rack)
        idle = rmc.optimize_fans()
        for n in rack.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        busy = rmc.optimize_fans()
        assert busy > idle
        assert "fans=" in rmc.audit_log[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            RackManagementController(Rack(), inlet_temp_c=45.0, target_exhaust_c=40.0)


class TestPowerManagement:
    def test_node_power_off_on(self):
        rack = Rack()
        rmc = RackManagementController(rack)
        node = rack.nodes[0]
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        p_busy = node.power_w()
        rmc.power_off_node(node.node_id)
        assert rmc.is_powered_off(node.node_id)
        assert node.power_w() < p_busy / 3
        rmc.power_on_node(node.node_id)
        assert not rmc.is_powered_off(node.node_id)
        assert [e for e in rmc.audit_log if e.startswith(("off", "on"))]

    def test_foreign_node_rejected(self):
        rmc = RackManagementController(Rack(rack_id=0))
        with pytest.raises(KeyError):
            rmc.power_off_node(30)  # belongs to rack 2

    def test_rack_cap_audited(self):
        rack = Rack()
        for n in rack.nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        rmc = RackManagementController(rack)
        before = rack.facility_power_w()
        achieved = rmc.apply_rack_cap(before * 0.8)
        assert achieved < before
        assert any(e.startswith("cap=") for e in rmc.audit_log)


class TestBurnInSuite:
    def test_healthy_node_ships(self):
        report = BurnInSuite().run(ComputeNode())
        assert report.passed, [f.detail for f in report.failures()]
        # All patterns ran: 3 power/thermal + 6 component + 2 sensor.
        assert len(report.checks) == 11

    def test_underpowered_node_fails_power_band(self):
        # A node with a dead GPU rail draws too little under the virus.
        node = ComputeNode()
        node.gpus[2].sleep()  # stands in for a dead card
        report = BurnInSuite().run(node)
        assert not report.passed
        assert any("power band" in f.name or "responds" in f.name for f in report.failures())

    def test_missing_sensor_rail_detected(self):
        node = ComputeNode()
        node.set_utilization(cpu=0.5, gpu=0.5, memory_intensity=0.5)
        readings = node.power_breakdown().as_dict()
        readings.pop("gpu1")
        report = BurnInSuite().run(ComputeNode(), sensor_readings=readings)
        assert not report.passed
        assert any("instrumented" in f.name for f in report.failures())

    def test_miscalibrated_sensors_detected(self):
        node = ComputeNode()
        node.set_utilization(cpu=0.5, gpu=0.5, memory_intensity=0.5)
        readings = {k: v * 1.10 for k, v in node.power_breakdown().as_dict().items()}
        report = BurnInSuite(rail_sum_tolerance=0.02).run(ComputeNode(), sensor_readings=readings)
        assert not report.passed
        assert any("rail sum" in f.name for f in report.failures())

    def test_hot_coolant_fails_thermal_soak(self):
        # Burn-in on 60 degC coolant (mis-plumbed bench) must fail thermal.
        suite = BurnInSuite(coolant_temp_c=60.0)
        report = suite.run(ComputeNode())
        assert not report.passed
        assert any("thermal soak" in f.name for f in report.failures())

    def test_validation(self):
        with pytest.raises(ValueError):
            BurnInSuite(power_band_w=(2000.0, 1000.0))
