"""Numerical tests for the real mini-kernels."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import cg_solve, fft_poisson_solve, sem_element_update, stencil_sweep


class TestFftPoisson:
    def test_inverts_known_mode(self):
        # rho = sin(2 pi x): laplacian(phi) = -rho => phi = rho / (2 pi)^2.
        n = 32
        x = np.arange(n) / n
        rho = np.sin(2 * np.pi * x)[:, None, None] * np.ones((1, n, n))
        phi = fft_poisson_solve(rho, box_length=1.0)
        expected = rho / (2 * np.pi) ** 2
        assert np.allclose(phi, expected, atol=1e-10)

    def test_mean_zero_gauge(self):
        rng = np.random.default_rng(0)
        rho = rng.normal(size=(16, 16, 16))
        phi = fft_poisson_solve(rho)
        assert abs(phi.mean()) < 1e-12

    def test_laplacian_roundtrip(self):
        rng = np.random.default_rng(1)
        rho = rng.normal(size=(24, 24, 24))
        rho -= rho.mean()
        phi = fft_poisson_solve(rho, box_length=1.0)
        # Spectral laplacian of phi must reproduce -rho.
        n = 24
        k = np.fft.fftfreq(n, d=1.0 / n) * 2 * np.pi
        kr = np.fft.rfftfreq(n, d=1.0 / n) * 2 * np.pi
        k2 = k[:, None, None] ** 2 + k[None, :, None] ** 2 + kr[None, None, :] ** 2
        lap = np.fft.irfftn(-k2 * np.fft.rfftn(phi), s=phi.shape, axes=(0, 1, 2))
        assert np.allclose(lap, -rho, atol=1e-8)

    def test_requires_3d(self):
        with pytest.raises(ValueError):
            fft_poisson_solve(np.zeros((4, 4)))


class TestStencil:
    def test_conserves_total(self):
        rng = np.random.default_rng(0)
        field = rng.uniform(size=(64, 64))
        out = stencil_sweep(field, n_steps=10)
        assert out.sum() == pytest.approx(field.sum())

    def test_smooths_variance(self):
        rng = np.random.default_rng(1)
        field = rng.normal(size=(64, 64))
        out = stencil_sweep(field, n_steps=50)
        assert out.var() < field.var()

    def test_uniform_field_fixed_point(self):
        field = np.full((16, 16), 3.0)
        assert np.allclose(stencil_sweep(field, 5), 3.0)

    def test_input_not_mutated(self):
        field = np.ones((8, 8))
        field[4, 4] = 100.0
        snapshot = field.copy()
        stencil_sweep(field, 3)
        assert np.array_equal(field, snapshot)

    def test_validation(self):
        with pytest.raises(ValueError):
            stencil_sweep(np.zeros(4), 1)
        with pytest.raises(ValueError):
            stencil_sweep(np.zeros((4, 4)), 0)
        with pytest.raises(ValueError):
            stencil_sweep(np.zeros((4, 4)), 1, alpha=0.5)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=20))
    def test_max_principle(self, steps):
        rng = np.random.default_rng(steps)
        field = rng.uniform(0, 10, size=(16, 16))
        out = stencil_sweep(field, steps)
        assert out.max() <= field.max() + 1e-12
        assert out.min() >= field.min() - 1e-12


class TestSemUpdate:
    def test_shapes_checked(self):
        with pytest.raises(ValueError):
            sem_element_update(np.zeros((4, 5)), np.zeros((4, 4)))
        with pytest.raises(ValueError):
            sem_element_update(np.zeros((4, 5)), np.zeros((5, 5)), dt=0.0)

    def test_zero_stiffness_identity(self):
        disp = np.random.default_rng(0).normal(size=(10, 6))
        out = sem_element_update(disp, np.zeros((6, 6)))
        assert np.array_equal(out, disp)

    def test_stable_oscillation_energy_bounded(self):
        # A stiff SPD operator with small dt keeps displacements bounded.
        rng = np.random.default_rng(1)
        A = rng.normal(size=(6, 6))
        stiffness = A @ A.T + np.eye(6)
        disp = rng.normal(size=(20, 6)) * 0.1
        for _ in range(100):
            disp = sem_element_update(disp, stiffness, dt=1e-2)
        assert np.isfinite(disp).all()
        assert np.abs(disp).max() < 10.0


class TestCg:
    def spd_system(self, n=50, seed=0):
        rng = np.random.default_rng(seed)
        A = rng.normal(size=(n, n))
        A = A @ A.T + n * np.eye(n)
        x_true = rng.normal(size=n)
        return A, x_true, A @ x_true

    def test_converges_to_solution(self):
        A, x_true, b = self.spd_system()
        result = cg_solve(lambda v: A @ v, b, tol=1e-10)
        assert result.converged
        assert np.allclose(result.x, x_true, atol=1e-6)

    def test_iteration_count_bounded_by_dimension(self):
        # Exact CG converges in at most n steps (plus rounding slack).
        A, _, b = self.spd_system(n=30, seed=1)
        result = cg_solve(lambda v: A @ v, b, tol=1e-12, max_iter=100)
        assert result.converged
        assert result.iterations <= 40

    def test_zero_rhs_immediate(self):
        result = cg_solve(lambda v: v, np.zeros(10))
        assert result.converged and result.iterations == 0

    def test_non_spd_detected(self):
        A = -np.eye(5)
        with pytest.raises(np.linalg.LinAlgError):
            cg_solve(lambda v: A @ v, np.ones(5))

    def test_max_iter_reached_reports_not_converged(self):
        A, _, b = self.spd_system(n=60, seed=2)
        result = cg_solve(lambda v: A @ v, b, tol=1e-14, max_iter=2)
        assert not result.converged
        assert result.iterations == 2

    def test_warm_start(self):
        A, x_true, b = self.spd_system(n=40, seed=3)
        cold = cg_solve(lambda v: A @ v, b, tol=1e-10)
        warm = cg_solve(lambda v: A @ v, b, x0=x_true + 1e-8, tol=1e-10)
        assert warm.iterations <= cold.iterations

    def test_validation(self):
        with pytest.raises(ValueError):
            cg_solve(lambda v: v, np.zeros((2, 2)))
        with pytest.raises(ValueError):
            cg_solve(lambda v: v, np.ones(3), tol=0.0)
