"""Tests for the HPL (Linpack) performance model."""

import numpy as np
import pytest

from repro.analysis import HplModel, davide_projection


class TestHplModel:
    def test_max_n_from_memory(self):
        m = HplModel(n_nodes=45, host_memory_per_node_bytes=256 * 1024**3)
        # sqrt(45 * 256 GiB * 0.8 / 8 B) ~= 1.11e6.
        assert m.max_n() == pytest.approx(1.11e6, rel=0.01)

    def test_efficiency_rises_with_n(self):
        m = HplModel()
        curve = m.efficiency_curve([0.1, 0.25, 0.5, 1.0])
        effs = [p.efficiency for p in curve]
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_rmax_efficiency_in_gpu_system_band(self):
        # 2016-era GPU systems ran HPL at ~60-80% of peak.
        pt = HplModel().rmax()
        assert 0.60 <= pt.efficiency <= 0.80

    def test_rmax_consistent_with_e01_projection(self):
        # The Green500 projection assumed 75% Linpack efficiency; the
        # derived figure must corroborate it within ten points.
        pt = HplModel().rmax()
        assumed = davide_projection().rmax_pflops / 0.99  # projection at 0.75
        assert pt.efficiency == pytest.approx(0.75, abs=0.10)

    def test_efficiency_asymptote_below_dgemm_ceiling(self):
        m = HplModel()
        assert m.rmax().efficiency < m.DGEMM_EFFICIENCY

    def test_time_scales_cubically_at_large_n(self):
        m = HplModel()
        t1 = m.point(m.max_n() // 2).time_s
        t2 = m.point(m.max_n()).time_s
        # Compute-dominated at these sizes: close to 8x for 2x N.
        assert t2 / t1 == pytest.approx(8.0, rel=0.15)

    def test_more_nodes_more_rmax_lower_efficiency_at_fixed_n(self):
        small = HplModel(n_nodes=16)
        big = HplModel(n_nodes=64)
        n = small.max_n() // 2
        p_small, p_big = small.point(n), big.point(n)
        assert p_big.rmax_flops > p_small.rmax_flops
        assert p_big.efficiency < p_small.efficiency  # same N, more overhead

    def test_validation(self):
        with pytest.raises(ValueError):
            HplModel(n_nodes=0)
        with pytest.raises(ValueError):
            HplModel(host_memory_per_node_bytes=0)
        m = HplModel()
        with pytest.raises(ValueError):
            m.point(0)
        with pytest.raises(ValueError):
            m.point(m.max_n() + 1)
        with pytest.raises(ValueError):
            m.efficiency_curve([0.0])
