"""Integration tests for the end-to-end Fig.-4 pipeline."""

import numpy as np
import pytest

from repro.core import DavideConfig, DavideSystem
from repro.scheduler import WorkloadConfig, WorkloadGenerator


def small_config():
    # A trimmed system keeps integration tests fast: 1 rack of 8 nodes.
    from repro.hardware.specs import DAVIDE_RACK, DAVIDE_SYSTEM, GARRISON_NODE, SystemSpec, RackSpec
    import dataclasses

    rack = dataclasses.replace(DAVIDE_RACK, nodes_per_rack=8)
    system = dataclasses.replace(DAVIDE_SYSTEM, compute_racks=1, rack=rack)
    return DavideConfig(system=system)


def workload(n=40, seed=0, nodes=8):
    return WorkloadGenerator(
        WorkloadConfig(n_jobs=n, cluster_nodes=nodes, load_factor=1.0),
        rng=np.random.default_rng(seed),
    ).generate()


class TestDavideSystemConstruction:
    def test_gateways_per_node(self):
        system = DavideSystem(small_config())
        assert len(system.gateways) == 8
        # 8 gateways + TSDB collector + scheduler plugin.
        assert system.broker.client_count == 10

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DavideConfig(measurement_window_s=0.0)
        with pytest.raises(ValueError):
            DavideConfig(train_fraction=1.0)


class TestCampaign:
    def test_full_pipeline_runs(self):
        system = DavideSystem(small_config(), seed=1)
        report = system.run_campaign(workload(40, seed=1), power_budget_w=12e3)
        # Every phase produced output.
        assert len(report.history_result.records) + len(report.production_result.records) == 40
        assert report.mqtt_published > 0
        assert report.mqtt_delivered > 0
        # Job lifecycle events rode the bus too (2 per history job), and
        # are retained for late accounting agents.
        late = system.broker.connect("ea-latecomer")
        late.subscribe("davide/jobs/+/end")
        assert len(late.drain()) == len(report.history_result.records)
        assert report.tsdb_samples > 0
        assert len(report.bills) == len(report.history_result.records)
        assert report.total_billed_energy_j > 0

    def test_measured_energy_close_to_ground_truth(self):
        system = DavideSystem(small_config(), seed=2)
        report = system.run_campaign(workload(40, seed=2), power_budget_w=None)
        truth = sum(r.energy_j for r in report.history_result.records)
        # The monitored chain (sensor + ADC errors) lands within 2%.
        assert report.total_billed_energy_j == pytest.approx(truth, rel=0.02)

    def test_predictor_beats_nameplate_assumption(self):
        system = DavideSystem(small_config(), seed=3)
        report = system.run_campaign(workload(60, seed=3), power_budget_w=12e3)
        # Nameplate MAPE would be (2000 - ~1550)/1550 ~ 29%; trained model
        # must do far better.
        assert report.predictor_score.mape < 0.15

    def test_budget_respected_in_production(self):
        system = DavideSystem(small_config(), seed=4)
        budget = 11e3
        report = system.run_campaign(workload(60, seed=4), power_budget_w=budget)
        qos = report.qos_summary()
        assert qos["peak_power_w"] <= budget * 1.02
        assert qos["cap_violation_fraction"] < 0.05

    def test_no_budget_means_no_stretch(self):
        system = DavideSystem(small_config(), seed=5)
        report = system.run_campaign(workload(40, seed=5), power_budget_w=None)
        assert report.production_result.mean_stretch() == pytest.approx(1.0)
        assert report.power_budget_w is None

    def test_statements_cover_history_users(self):
        system = DavideSystem(small_config(), seed=6)
        report = system.run_campaign(workload(40, seed=6))
        users = {r.job.user for r in report.history_result.records}
        assert set(report.statements) == users

    def test_predictor_kinds(self):
        for kind in ("ridge", "knn", "per-key"):
            system = DavideSystem(small_config(), seed=7)
            report = system.run_campaign(workload(30, seed=7), predictor_kind=kind)
            assert report.predictor_score.name == kind
        with pytest.raises(ValueError):
            DavideSystem(small_config()).run_campaign(workload(30), predictor_kind="magic")

    def test_too_few_jobs_rejected(self):
        system = DavideSystem(small_config())
        with pytest.raises(ValueError):
            system.run_campaign(workload(4))

    def test_retained_telemetry_visible_to_late_agent(self):
        system = DavideSystem(small_config(), seed=8)
        system.run_campaign(workload(30, seed=8))
        late = system.broker.connect("late-profiler")
        late.subscribe("davide/+/power/node")
        assert late.poll() is not None  # retained last batches replayed
