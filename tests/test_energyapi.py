"""Tests for the energy-proportionality node API and instrumentation."""

import numpy as np
import pytest

from repro.energyapi import (
    ComponentConfig,
    Instrumentation,
    NodeEnergyApi,
    TradeoffRecorder,
)
from repro.hardware import ComputeNode
from repro.telemetry import PowerProfiler
from repro.power import PowerTrace


class TestComponentConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ComponentConfig(gpus_needed=-1)
        with pytest.raises(ValueError):
            ComponentConfig(memory_throttle=0.0)
        ComponentConfig()  # all-None is a valid no-op


class TestNodeEnergyApi:
    def test_sleep_unused_gpus_saves_power(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        before = node.power_w()
        slept = api.sleep_unused_gpus(1)
        assert slept == 3
        assert node.power_w() < before
        assert node.gpus[0].asleep is False
        assert all(g.asleep for g in node.gpus[1:])

    def test_core_gating_and_smt(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        api.set_active_cores(2)
        api.set_smt(2)
        assert all(c.active_cores == 2 and c.smt_level == 2 for c in node.cpus)

    def test_frequency_pinning(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        api.set_cpu_frequency(2.5e9)
        assert all(c.frequency_hz >= 2.5e9 for c in node.cpus)

    def test_memory_throttle(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        full = api.effective_memory_bandwidth_Bps
        api.set_memory_throttle(0.5)
        assert api.effective_memory_bandwidth_Bps == pytest.approx(full / 2)
        with pytest.raises(ValueError):
            api.set_memory_throttle(1.5)

    def test_apply_composite_config(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        api.apply(ComponentConfig(active_cores_per_cpu=4, gpus_needed=2, memory_throttle=0.8))
        assert node.cpus[0].active_cores == 4
        assert sum(g.asleep for g in node.gpus) == 2

    def test_reset_restores_everything(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        api.apply(ComponentConfig(active_cores_per_cpu=1, smt_level=1, gpus_needed=0))
        api.reset()
        assert all(c.active_cores == c.spec.cores for c in node.cpus)
        assert all(not g.asleep for g in node.gpus)
        assert node.relative_performance() == pytest.approx(1.0)

    def test_region_scope_restores_on_exit(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        with api.region(ComponentConfig(gpus_needed=0)):
            assert all(g.asleep for g in node.gpus)
        assert all(not g.asleep for g in node.gpus)

    def test_region_scope_restores_on_exception(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        with pytest.raises(RuntimeError):
            with api.region(ComponentConfig(gpus_needed=0)):
                raise RuntimeError("boom")
        assert all(not g.asleep for g in node.gpus)

    def test_idle_power_saving_leaves_state_untouched(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        node.cpus[0].set_active_cores(4)
        saving = api.idle_power_saving_w(ComponentConfig(gpus_needed=0))
        assert saving > 0
        assert node.cpus[0].active_cores == 4
        assert all(not g.asleep for g in node.gpus)

    def test_call_log(self):
        api = NodeEnergyApi(ComputeNode())
        api.set_active_cores(2)
        api.sleep_unused_gpus(1)
        api.reset()
        assert api.log.calls == ["cores=2", "gpus=1", "gpus=all", "reset"]


class TestInstrumentation:
    def test_markers_recorded_with_clock(self):
        now = {"t": 0.0}
        instr = Instrumentation(clock=lambda: now["t"])
        with instr.region("fft"):
            now["t"] = 2.0
        with instr.region("mpi"):
            now["t"] = 3.0
        assert len(instr.markers) == 2
        fft = instr.markers_for("fft")[0]
        assert fft.t_enter_s == 0.0 and fft.t_exit_s == 2.0

    def test_region_applies_and_resets_node_shape(self):
        node = ComputeNode()
        api = NodeEnergyApi(node)
        now = {"t": 0.0}
        instr = Instrumentation(clock=lambda: now["t"], api=api)
        with instr.region("io", config=ComponentConfig(gpus_needed=0)):
            assert all(g.asleep for g in node.gpus)
            now["t"] = 1.0
        assert all(not g.asleep for g in node.gpus)

    def test_markers_feed_profiler(self):
        now = {"t": 0.0}
        instr = Instrumentation(clock=lambda: now["t"])
        with instr.region("hot"):
            now["t"] = 1.0
        with instr.region("cold"):
            now["t"] = 2.0
        t = np.arange(0, 2, 0.01)
        trace = PowerTrace(t, np.where(t < 1.0, 1800.0, 600.0))
        profiler = PowerProfiler(trace)
        sep = profiler.region_power_separation(instr.markers, "hot", "cold")
        assert sep > 1000.0


class TestTradeoffRecorder:
    def test_best_selectors(self):
        rec = TradeoffRecorder()
        rec.record("fast", time_s=10.0, energy_j=2000.0)
        rec.record("eco", time_s=20.0, energy_j=1200.0)
        rec.record("balanced", time_s=12.0, energy_j=1500.0)
        assert rec.best_time().label == "fast"
        assert rec.best_energy().label == "eco"
        assert rec.best_edp().label == "balanced"

    def test_pareto_front(self):
        rec = TradeoffRecorder()
        rec.record("a", 10.0, 2000.0)
        rec.record("b", 12.0, 1500.0)
        rec.record("dominated", 13.0, 1600.0)
        rec.record("c", 20.0, 1200.0)
        front = [p.label for p in rec.pareto_front()]
        assert front == ["a", "b", "c"]

    def test_validation(self):
        rec = TradeoffRecorder()
        with pytest.raises(ValueError):
            rec.record("x", time_s=0.0, energy_j=1.0)
        with pytest.raises(ValueError):
            rec.best_energy()
