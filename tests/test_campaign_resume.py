"""Crash-resume fuzz for checkpointed campaigns.

A campaign killed after an arbitrary number of completed cells and then
resumed must be indistinguishable from one that never died: same
``campaign_digest``, same per-cell ``result_digest``s, in the same
submission order.  The kill is simulated by an ``on_result`` callback
that raises after N cells — the checkpoint has already recorded cell N
by then (write-after-every-chunk), which is exactly the durability
contract being pinned.
"""

import random

import pytest

from repro.scheduler import (
    CampaignCheckpoint,
    CampaignConfig,
    Scenario,
    campaign_digest,
    resume_campaign,
    run_campaign,
)

CONFIG = CampaignConfig(n_nodes=8, n_jobs=18, root_seed=7, load_factor=1.1)

# The ISSUE's 3x3x4 fuzz grid: 3 policies x 3 caps x 4 seed indices.
GRID = [
    Scenario(policy=policy, cap_w=cap, seed_index=s)
    for policy in ("fifo", "easy", "power-aware")
    for cap in (8e3, 10e3, 12e3)
    for s in range(4)
]


class Killed(Exception):
    pass


def kill_after(n):
    seen = []

    def hook(cell, replayed):
        seen.append(cell)
        if len(seen) >= n:
            raise Killed

    return hook


@pytest.fixture(scope="module")
def uninterrupted():
    results = run_campaign(CONFIG, GRID, processes=1)
    return results, campaign_digest(results)


class TestCrashResumeFuzz:
    @pytest.mark.parametrize("kill_seed", range(10))
    def test_killed_and_resumed_equals_uninterrupted(
            self, kill_seed, uninterrupted, tmp_path):
        baseline, baseline_digest = uninterrupted
        n = random.Random(kill_seed).randrange(1, len(GRID))

        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        with pytest.raises(Killed):
            run_campaign(CONFIG, GRID, processes=1,
                         checkpoint=checkpoint, on_result=kill_after(n))
        assert len(checkpoint) == n  # every completed cell was durable

        resumed = resume_campaign(CONFIG, GRID, checkpoint, processes=1)
        assert campaign_digest(resumed) == baseline_digest
        for want, got in zip(baseline, resumed):
            assert got.digest == want.digest
            assert got.scenario == want.scenario

    def test_resume_replays_checkpointed_cells(self, tmp_path):
        n = 5
        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        with pytest.raises(Killed):
            run_campaign(CONFIG, GRID, processes=1,
                         checkpoint=checkpoint, on_result=kill_after(n))
        flags = []
        resume_campaign(CONFIG, GRID, checkpoint, processes=1,
                        on_result=lambda cell, replayed: flags.append(replayed))
        assert flags[:n] == [True] * n
        assert flags[n:] == [False] * (len(GRID) - n)

    def test_resume_after_complete_simulates_nothing(
            self, uninterrupted, tmp_path):
        _, baseline_digest = uninterrupted
        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        run_campaign(CONFIG, GRID, processes=1, checkpoint=checkpoint)
        assert len(checkpoint) == len(GRID)
        flags = []
        again = resume_campaign(CONFIG, GRID, checkpoint, processes=1,
                                on_result=lambda cell, replayed: flags.append(replayed))
        assert flags == [True] * len(GRID)
        assert campaign_digest(again) == baseline_digest

    def test_pooled_kill_and_resume(self, uninterrupted, tmp_path):
        _, baseline_digest = uninterrupted
        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        with pytest.raises(Killed):
            run_campaign(CONFIG, GRID, processes=2,
                         checkpoint=checkpoint, on_result=kill_after(7))
        assert len(checkpoint) >= 7
        resumed = resume_campaign(CONFIG, GRID, checkpoint, processes=2)
        assert campaign_digest(resumed) == baseline_digest


class TestResumeGuards:
    def test_resume_without_manifest_raises(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "empty")
        with pytest.raises(ValueError, match="nothing to resume"):
            resume_campaign(CONFIG, GRID, checkpoint, processes=1)

    def test_checkpoint_rejects_different_campaign(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        with pytest.raises(Killed):
            run_campaign(CONFIG, GRID, processes=1,
                         checkpoint=checkpoint, on_result=kill_after(3))
        other = CampaignConfig(n_nodes=8, n_jobs=18, root_seed=8,
                               load_factor=1.1)
        with pytest.raises(ValueError, match="different campaign"):
            resume_campaign(other, GRID, checkpoint, processes=1)
        with pytest.raises(ValueError, match="different campaign"):
            resume_campaign(CONFIG, GRID[:-1], checkpoint, processes=1)

    def test_checkpoint_survives_reopen(self, tmp_path):
        checkpoint = CampaignCheckpoint(tmp_path / "ckpt")
        with pytest.raises(Killed):
            run_campaign(CONFIG, GRID, processes=1,
                         checkpoint=checkpoint, on_result=kill_after(4))
        # A fresh process sees the same durable state through a new handle.
        reopened = CampaignCheckpoint(tmp_path / "ckpt")
        assert reopened.has_manifest()
        assert len(reopened) == 4
        resumed = resume_campaign(CONFIG, GRID, reopened, processes=1)
        assert len(resumed) == len(GRID)
