"""Tests for RAPL, DVFS governor, PI node capper and power sharing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.capping import (
    DvfsGovernor,
    NodePowerCapper,
    PiController,
    RaplDomain,
    allocation_quality,
    proportional_share,
    uniform_share,
    water_filling,
)
from repro.hardware import ComputeNode, CpuModel, POWER8_PLUS


class TestRapl:
    def test_validation(self):
        with pytest.raises(ValueError):
            RaplDomain(limit_w=0.0)
        with pytest.raises(ValueError):
            RaplDomain(limit_w=100.0, window_s=0.0)
        with pytest.raises(ValueError):
            RaplDomain(limit_w=100.0, control_period_s=2.0, window_s=1.0)
        with pytest.raises(ValueError):
            RaplDomain(limit_w=100.0, min_level=0.0)
        dom = RaplDomain(limit_w=100.0)
        with pytest.raises(ValueError):
            dom.run(lambda t: 100.0, duration_s=0.0)
        with pytest.raises(ValueError):
            dom.run(lambda t: -1.0, duration_s=1.0)

    def test_no_throttle_when_demand_below_limit(self):
        dom = RaplDomain(limit_w=200.0, floor_w=60.0)
        result = dom.run(lambda t: 150.0, duration_s=5.0)
        assert result.mean_performance() > 0.99
        assert result.window_violation_fraction(200.0) == 0.0

    def test_limit_enforced_on_sustained_overdemand(self):
        dom = RaplDomain(limit_w=150.0, floor_w=60.0)
        result = dom.run(lambda t: 250.0, duration_s=10.0)
        # After the window fills, the running average tracks the limit.
        tail = result.window_avg_w[len(result.window_avg_w) // 2:]
        assert np.mean(tail) <= 150.0 * 1.05
        assert result.mean_performance() < 1.0

    def test_short_burst_rides_through_window(self):
        # A burst much shorter than the window barely moves the average:
        # RAPL admits it without throttling (the averaging semantics).
        dom = RaplDomain(limit_w=150.0, window_s=2.0, floor_w=60.0)

        def demand(t):
            return 300.0 if 4.0 <= t < 4.05 else 100.0

        result = dom.run(demand, duration_s=8.0)
        burst_idx = (result.times_s >= 4.0) & (result.times_s < 4.05)
        assert result.performance_level[burst_idx].min() > 0.95

    def test_power_of_level_quadratic(self):
        dom = RaplDomain(limit_w=100.0, floor_w=50.0)
        assert dom.power_of_level(1.0, 250.0) == pytest.approx(250.0)
        assert dom.power_of_level(0.5, 250.0) == pytest.approx(50.0 + 200.0 * 0.25)


class TestDvfsGovernor:
    def test_cap_to_power_selects_fastest_fitting_state(self):
        cpu = CpuModel()
        gov = DvfsGovernor(cpu)
        idx = gov.cap_to_power(150.0, utilization=1.0)
        assert cpu.power_w(1.0) <= 150.0
        if idx > 0:
            assert gov.power_at(idx - 1, 1.0) > 150.0

    def test_cap_below_floor_selects_bottom(self):
        cpu = CpuModel()
        gov = DvfsGovernor(cpu)
        idx = gov.cap_to_power(10.0)
        assert idx == len(cpu.pstates) - 1

    def test_cap_validation(self):
        with pytest.raises(ValueError):
            DvfsGovernor(CpuModel()).cap_to_power(0.0)

    def test_race_vs_pace_excludes_deadline_misses(self):
        cpu = CpuModel()
        gov = DvfsGovernor(cpu)
        work = POWER8_PLUS.max_clock_hz * 10.0  # 10 s at top speed
        results = gov.race_vs_pace(work, deadline_s=12.0)
        # Only states with f >= work/deadline qualify.
        assert all(r.time_s <= 12.0 for r in results)
        assert len(results) < len(cpu.pstates)

    def test_pacing_saves_energy_for_compute_bound_work(self):
        # With a long deadline, a middle state beats racing at top speed
        # (the V^2 term) for this power model.
        cpu = CpuModel()
        gov = DvfsGovernor(cpu)
        work = POWER8_PLUS.max_clock_hz * 10.0
        best = gov.most_efficient_state(work, deadline_s=30.0)
        race = gov.race_vs_pace(work, deadline_s=30.0)[0]
        assert best.total_energy_j <= race.total_energy_j
        assert best.pstate_index > 0  # not the top state

    def test_governor_restores_pstate(self):
        cpu = CpuModel()
        cpu.set_pstate(2)
        gov = DvfsGovernor(cpu)
        gov.race_vs_pace(1e9, deadline_s=100.0)
        gov.power_at(5)
        assert cpu.pstate_index == 2

    def test_impossible_deadline_raises(self):
        gov = DvfsGovernor(CpuModel())
        with pytest.raises(ValueError):
            gov.most_efficient_state(1e15, deadline_s=0.001)


class TestPiController:
    def test_output_clamped(self):
        pi = PiController(kp=1.0, ki=1.0, setpoint=100.0, out_min=-10.0, out_max=10.0)
        assert pi.update(0.0, 1.0) == 10.0
        assert pi.update(1000.0, 1.0) == -10.0

    def test_integral_drives_steady_error_to_zero(self):
        pi = PiController(kp=0.1, ki=0.5, setpoint=50.0, out_min=-100.0, out_max=100.0)
        # Plant: measurement = 40 + output (persistent offset of -10).
        out = 0.0
        for _ in range(200):
            out = pi.update(40.0 + out, 0.1)
        assert 40.0 + out == pytest.approx(50.0, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            PiController(1, 1, 0, out_min=1.0, out_max=0.0)
        pi = PiController(1, 1, 0, out_min=-1, out_max=1)
        with pytest.raises(ValueError):
            pi.update(0.0, 0.0)

    def test_reset_clears_state(self):
        pi = PiController(kp=0.0, ki=1.0, setpoint=10.0, out_min=-100, out_max=100)
        pi.update(0.0, 1.0)
        pi.reset()
        assert pi.update(10.0, 1.0) == 0.0


class TestNodePowerCapper:
    def test_holds_setpoint_under_full_load(self):
        node = ComputeNode()
        capper = NodePowerCapper(node, setpoint_w=1500.0, rng=np.random.default_rng(0))
        telemetry = capper.run(duration_s=20.0)
        tail = telemetry.achieved_w[len(telemetry.achieved_w) // 2:]
        assert np.mean(tail) == pytest.approx(1500.0, rel=0.05)
        assert telemetry.steady_state_error_w(1500.0) < 100.0

    def test_releases_cap_when_load_drops(self):
        node = ComputeNode()
        capper = NodePowerCapper(node, setpoint_w=1500.0, rng=np.random.default_rng(1))

        def util(t):
            return (1.0, 1.0) if t < 10.0 else (0.1, 0.1)

        telemetry = capper.run(duration_s=20.0, utilization_fn=util)
        # After the load drop, achieved power is below the setpoint and
        # performance is not artificially held down.
        late = telemetry.achieved_w[telemetry.times_s > 15.0]
        assert np.all(late < 1500.0)
        assert node.relative_performance() > 0.9

    def test_validation(self):
        node = ComputeNode()
        with pytest.raises(ValueError):
            NodePowerCapper(node, setpoint_w=0.0)
        capper = NodePowerCapper(node, setpoint_w=1000.0)
        with pytest.raises(ValueError):
            capper.run(duration_s=0.0)


class TestPowerSharing:
    def demands(self):
        return np.array([1900.0, 1500.0, 800.0, 600.0])

    def floors(self):
        return np.full(4, 500.0)

    def test_no_trim_when_budget_sufficient(self):
        d = self.demands()
        for policy in (uniform_share, proportional_share, water_filling):
            grants = policy(d, budget_w=10e3, floors_w=self.floors())
            assert np.allclose(np.minimum(grants, d), grants)
            if policy is not uniform_share:
                assert np.allclose(grants, d)

    def test_budget_respected(self):
        d = self.demands()
        budget = 3500.0
        for policy in (uniform_share, proportional_share, water_filling):
            grants = policy(d, budget_w=budget, floors_w=self.floors())
            assert grants.sum() <= budget + 1e-6

    def test_water_filling_protects_small_demands(self):
        d = self.demands()
        grants = water_filling(d, budget_w=3500.0, floors_w=self.floors())
        # The two light nodes keep their full demand.
        assert grants[2] == pytest.approx(800.0)
        assert grants[3] == pytest.approx(600.0)
        # The two heavy nodes get a common level.
        assert grants[0] == pytest.approx(grants[1], rel=1e-6)

    def test_policy_tradeoffs(self):
        # Proportional share equalises every node's relative slowdown, so
        # it maximises the minimum speed (Jain index 1); water filling
        # instead protects light nodes entirely (speed 1.0), buying a
        # higher mean speed at the cost of the heaviest node.
        d = self.demands()
        f = self.floors()
        budget = 3500.0
        q_wf = allocation_quality(d, water_filling(d, budget, f), f)
        q_prop = allocation_quality(d, proportional_share(d, budget, f), f)
        q_uni = allocation_quality(d, uniform_share(d, budget, f), f)
        assert q_prop["jain_fairness"] == pytest.approx(1.0)
        assert q_prop["min_speed"] >= q_wf["min_speed"] - 1e-9
        assert q_prop["min_speed"] >= q_uni["min_speed"] - 1e-9
        assert q_wf["mean_speed"] >= q_prop["mean_speed"] - 1e-9
        # Water filling spends the whole budget; uniform strands some.
        assert q_wf["granted_total_w"] > q_uni["granted_total_w"]

    def test_uniform_strands_budget(self):
        d = self.demands()
        grants = uniform_share(d, budget_w=3500.0, floors_w=self.floors())
        # Light nodes cannot use their 875 W slices fully.
        assert grants.sum() < 3500.0 - 1.0

    def test_validation(self):
        d = self.demands()
        with pytest.raises(ValueError):
            water_filling(d, budget_w=0.0)
        with pytest.raises(ValueError):
            water_filling(d, budget_w=1000.0, floors_w=self.floors())  # floors exceed budget
        with pytest.raises(ValueError):
            allocation_quality(d, d[:2])

    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.floats(min_value=600.0, max_value=2000.0), min_size=2, max_size=16),
        st.floats(min_value=0.4, max_value=1.0),
    )
    def test_water_filling_exact_budget_when_scarce(self, demands, scarcity):
        d = np.array(demands)
        f = np.full(d.size, 500.0)
        budget = float(f.sum() + (d.sum() - f.sum()) * scarcity)
        grants = water_filling(d, budget, f)
        if d.sum() > budget:
            assert grants.sum() == pytest.approx(budget, rel=1e-6)
        assert np.all(grants >= f - 1e-9)
        assert np.all(grants <= d + 1e-9)
