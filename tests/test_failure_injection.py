"""Failure-injection tests: the stack's behaviour when parts misbehave.

The paper's system must keep operating through monitoring outages, lost
telemetry consumers, sync loss and overload — these tests pin down the
designed degradation mode of each.
"""

import numpy as np
import pytest

from repro.hardware import ComputeNode
from repro.monitoring import CappingAgent, EnergyGateway, GatewayDaemon, MqttBroker
from repro.power import PowerTrace
from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    Job,
    JobRecord,
    PowerAwareScheduler,
    SchedulerMonitorPlugin,
)
from repro.sim import Environment
from repro.telemetry import EnergyAccountant, SeriesKey, TimeSeriesDB
from repro.timesync import HW_TIMESTAMPING, XO_CHEAP, LocalClock, PtpSlave


class TestMonitoringOutage:
    def test_accounting_falls_back_to_scheduler_energy(self):
        """No samples in the DB (gateway down) -> bill from the RM's books."""
        acct = EnergyAccountant(TimeSeriesDB())
        job = Job(job_id=1, user="u", app="qe", n_nodes=2, walltime_req_s=10.0,
                  submit_time_s=0.0, true_runtime_s=10.0, true_power_per_node_w=1000.0)
        rec = JobRecord(job=job)
        rec.start_time_s, rec.end_time_s, rec.nodes = 0.0, 10.0, (0, 1)
        rec.energy_j = 20000.0
        assert acct.job_energy_j(rec) == 20000.0

    def test_partial_outage_uses_surviving_nodes(self):
        """One node's gateway down: bill from the nodes that reported."""
        db = TimeSeriesDB()
        acct = EnergyAccountant(db)
        db.insert_many(acct.node_key(0), np.linspace(0, 10, 11), np.full(11, 1000.0))
        # node 1's series is absent entirely.
        job = Job(job_id=1, user="u", app="qe", n_nodes=2, walltime_req_s=10.0,
                  submit_time_s=0.0, true_runtime_s=10.0, true_power_per_node_w=1000.0)
        rec = JobRecord(job=job)
        rec.start_time_s, rec.end_time_s, rec.nodes = 0.0, 10.0, (0, 1)
        rec.energy_j = 20000.0
        # The surviving node's 10 kJ is measured; the dark node falls
        # back to its equal share of the simulator-accounted energy
        # (10 kJ) instead of being silently billed as zero.
        assert acct.job_energy_j(rec) == pytest.approx(20000.0)
        bill = acct.bill(rec)
        assert bill.measured_fraction == pytest.approx(0.5)
        assert bill.energy_j == pytest.approx(20000.0)


class TestTelemetryConsumerFailures:
    def test_disconnected_collector_does_not_break_publishers(self):
        broker = MqttBroker()
        collector = broker.connect("collector")
        collector.subscribe("davide/#", qos=1)
        eg = EnergyGateway(0, broker)
        trace = PowerTrace(np.linspace(0, 0.001, 100), np.full(100, 1000.0))
        eg.publish_trace(trace)
        broker.disconnect(collector)
        # Publishing continues unimpeded into the void.
        sent = eg.publish_trace(trace)
        assert sent > 0

    def test_qos1_redelivery_recovers_unacked_batches(self):
        broker = MqttBroker()
        collector = broker.connect("collector")
        collector.subscribe("davide/node0/power/node", qos=1)
        eg = EnergyGateway(0, broker)
        trace = PowerTrace(np.linspace(0, 0.01, 1200), np.full(1200, 1000.0))
        eg.publish_trace(trace)
        first_batch = collector.poll()  # consumer crashes after one message
        lost = collector.drain()        # queue wiped by the crash
        assert len(lost) >= 1
        # On reconnect, the broker's in-flight set redelivers everything
        # unacknowledged (with DUP set).
        dups = collector.redeliver_inflight()
        rebuilt = EnergyGateway.reassemble([first_batch] + dups)
        assert len(rebuilt) == len(trace)

    def test_plugin_ignores_empty_payloads(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        broker.publish("davide/node0/power/node",
                       {"node": 0, "t": np.array([]), "p": np.array([])})
        assert plugin.system_power_w() == 0.0


class TestSyncLoss:
    def test_clock_error_grows_after_sync_stops(self):
        local = LocalClock(XO_CHEAP, rng=np.random.default_rng(3))
        slave = PtpSlave(local, HW_TIMESTAMPING, rng=np.random.default_rng(4))
        slave.synchronize(60.0)
        err_synced = abs(slave.clock.error_s(60.0))
        # Grandmaster unreachable for ten minutes: drift accumulates.
        err_holdover = abs(slave.clock.error_s(660.0))
        assert err_holdover > err_synced * 5

    def test_resync_recovers(self):
        local = LocalClock(XO_CHEAP, rng=np.random.default_rng(5))
        slave = PtpSlave(local, HW_TIMESTAMPING, rng=np.random.default_rng(6))
        slave.synchronize(60.0)
        _ = slave.clock.error_s(660.0)  # holdover gap
        slave.synchronize(30.0, start_s=660.0)
        assert abs(slave.clock.error_s(690.0)) < 50e-6


class TestCoolingFailures:
    def test_pump_failure_halves_flow_and_violates_constraints(self):
        """One of the redundant pumps fails: flow halves, the loop runs
        hotter; at the hot end of the envelope, constraints trip."""
        from repro.cooling import HeatExchanger, LiquidLoop

        healthy = LiquidLoop(HeatExchanger(4000.0), secondary_flow_lpm=30.0)
        degraded = LiquidLoop(HeatExchanger(4000.0), secondary_flow_lpm=15.0)
        op_ok = healthy.operating_point(heat_w=22e3, facility_inlet_c=35.0)
        op_bad = degraded.operating_point(heat_w=22e3, facility_inlet_c=35.0)
        # Degraded flow runs the return visibly hotter.
        assert op_bad["secondary_return_c"] > op_ok["secondary_return_c"] + 5.0
        # At a 44 degC facility inlet the degraded loop busts the supply cap.
        hot_bad = degraded.operating_point(heat_w=30e3, facility_inlet_c=44.0)
        assert degraded.check_constraints(hot_bad) != []

    def test_fan_wall_failure_forces_throttling(self):
        """Losing the fan wall (air path) on an air-cooled part drives the
        die into the governor's throttle band."""
        from repro.cooling import ThermalChain, ThermalStage, ThrottleGovernor

        # Heatsink with stagnant air: the sink-to-air resistance triples.
        broken = ThermalChain(
            [ThermalStage("die", 0.05, 30.0), ThermalStage("heatsink", 0.45, 900.0)],
            boundary_temp_c=28.0,
        )
        gov = ThrottleGovernor()
        result = gov.run(broken, demand_power_w=300.0, duration_s=2400.0)
        assert result.throttled_fraction > 0.5
        assert result.mean_performance_fraction < 0.8


class TestOverloadBehaviour:
    def test_capping_agent_survives_daemon_silence(self):
        """If the gateway daemon never publishes, the agent just idles."""
        env = Environment()
        broker = MqttBroker()
        node = ComputeNode()
        node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        agent = CappingAgent(env, node, broker, setpoint_w=1000.0)
        env.run(until=5.0)  # no daemon attached
        assert agent.actuations == 0

    def test_scheduler_with_impossible_power_budget_still_drains_queue(self):
        """Budget below a single job's draw: the escape hatch serialises."""
        jobs = [
            Job(job_id=i, user="u", app="qe", n_nodes=4, walltime_req_s=100.0,
                submit_time_s=0.0, true_runtime_s=50.0, true_power_per_node_w=1900.0)
            for i in range(3)
        ]
        policy = PowerAwareScheduler(5000.0, predictor=lambda j: j.true_power_w)
        result = ClusterSimulator(8, policy).run(jobs)
        assert all(r.end_time_s is not None for r in result.records)
        # They ran one at a time (the envelope can't fit two).
        starts = sorted(r.start_time_s for r in result.records)
        assert starts[1] >= starts[0] + 50.0 - 1e-6

    def test_simulator_rejects_policy_overcommitting_nodes(self):
        class RoguePolicy:
            name = "rogue"

            def select(self, queue, ctx):
                return list(queue)  # start everything regardless of nodes

        jobs = [
            Job(job_id=i, user="u", app="qe", n_nodes=3, walltime_req_s=10.0,
                submit_time_s=0.0, true_runtime_s=5.0, true_power_per_node_w=1000.0)
            for i in range(2)
        ]
        with pytest.raises(RuntimeError, match="without enough free nodes"):
            ClusterSimulator(4, RoguePolicy()).run(jobs)

    def test_tsdb_retention_under_continuous_ingest(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p", node="0")
        for epoch in range(5):
            t0 = epoch * 1000.0
            db.insert_many(key, t0 + np.arange(1000.0), np.ones(1000))
            db.retention_trim(t0)
        t, _ = db.query(key)
        assert t.min() >= 4000.0
        assert db.sample_count(key) == 1000
