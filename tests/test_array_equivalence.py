"""Seeded differential sweep pinning all three simulator cores.

Each test expands one seed into a random scenario (policy x cap x
outages x workload shape, see ``tests/diff_harness.random_scenario``)
and demands the reference, calendar and array cores produce
float-identical results — every record field, both trace arrays, every
QoS metric and the sha256 digest.  A failure message names the seed and
the exact ``python tests/diff_harness.py --seed N`` command that
reproduces it outside pytest.

The 200-seed sweep is the acceptance gate for the array core: any
arithmetic shortcut in its vectorized trim, batched completions or flat
FIFO loop that is not an IEEE-754 identity of the contract expression
shows up here as a one-ULP divergence.
"""

import pytest

from tests.diff_harness import (
    CORES,
    assert_cap_heavy_equivalent,
    assert_equivalent,
    cap_heavy_scenario,
    compare_results,
    random_scenario,
    run_core,
)

N_SWEEP_SEEDS = 200
N_CAP_HEAVY_SEEDS = 40


@pytest.mark.parametrize("seed", range(N_SWEEP_SEEDS))
def test_cores_equivalent(seed):
    assert_equivalent(seed)


@pytest.mark.parametrize("seed", range(N_CAP_HEAVY_SEEDS))
def test_cores_equivalent_cap_heavy(seed):
    """Tight-cap fuzzing: rho binds and moves on nearly every event, so
    the epoch-settled trim path (lazy accounting replay, vectorized
    catch-up, same-timestamp cascade batching) is exercised constantly
    rather than incidentally."""
    assert_cap_heavy_equivalent(seed)


def test_cap_heavy_sweep_is_actually_cap_heavy():
    """Every cap-heavy draw must cap tightly (<= 65 % of nameplate) and
    the sweep must still cover the policy kinds, step caps included."""
    scenarios = [cap_heavy_scenario(seed) for seed in range(N_CAP_HEAVY_SEEDS)]
    assert all(s.cap_w is not None for s in scenarios)
    from tests.diff_harness import BUDGET_PER_NODE_W

    assert all(
        s.cap_w <= 0.65 * s.n_nodes * BUDGET_PER_NODE_W + 1e-9
        for s in scenarios
    )
    kinds = {s.policy_kind for s in scenarios}
    assert "time-varying" in kinds  # step caps: rho moves between events
    assert "easy" in kinds  # deep-backlog decision cascades
    assert any(s.outages for s in scenarios)


def test_cap_heavy_divergence_reports_repro_seed():
    """Cap-heavy failures must point at --cap-heavy-seed, not --seed."""
    scenario = cap_heavy_scenario(0)
    other = cap_heavy_scenario(1)
    a = run_core(scenario, "calendar")
    b = run_core(other, "calendar")
    with pytest.raises(AssertionError, match=r"--cap-heavy-seed 0"):
        compare_results(scenario, a, "calendar", b, "array")


def test_sweep_covers_the_scenario_space():
    """The seed range actually exercises every policy kind, capped and
    uncapped runs, and outage injection — otherwise the sweep silently
    stops guarding paths it claims to pin."""
    scenarios = [random_scenario(seed) for seed in range(N_SWEEP_SEEDS)]
    kinds = {s.policy_kind for s in scenarios}
    assert kinds == {"fifo", "easy", "power-aware", "time-varying"}
    assert any(s.cap_w is None for s in scenarios)
    assert any(s.cap_w is not None for s in scenarios)
    assert any(s.outages for s in scenarios)
    assert any(not s.outages for s in scenarios)
    # The FIFO/uncapped/no-outage cell triggers the array core's flat
    # fast path; make sure the sweep hits it and its complement.
    assert any(
        s.policy_kind == "fifo" and s.cap_w is None and not s.outages
        for s in scenarios
    )


def test_divergence_reports_repro_seed():
    """A mismatch must tell the reader how to rerun the scenario."""
    scenario = random_scenario(0)
    other = random_scenario(1)
    a = run_core(scenario, "calendar")
    b = run_core(other, "calendar")
    with pytest.raises(AssertionError, match=r"--seed 0"):
        compare_results(scenario, a, "calendar", b, "array")


def test_scenario_expansion_is_deterministic():
    """Seeds must expand identically across calls (and interpreters),
    or the ``--seed`` repro hint points at a different scenario."""
    for seed in (0, 17, 199):
        assert random_scenario(seed) == random_scenario(seed)


def test_core_list_matches_simulator():
    from repro.scheduler import SIMULATOR_CORES

    assert tuple(CORES) == tuple(SIMULATOR_CORES)
