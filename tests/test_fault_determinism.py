"""Seeded-RNG determinism: same seed, byte-identical telemetry.

The whole point of the fault subsystem is *reproducible* chaos — a
failure found in CI must replay exactly from its seed.  These tests pin
byte-level identity of the canonical event log across runs, and that
different seeds actually produce different campaigns.
"""

import numpy as np

from repro.faults import DrillConfig, FaultDrill, FaultInjector, FaultKind, FaultSpec
from repro.sim import Environment
from repro.telemetry import TelemetryEventLog

CAMPAIGN = [
    FaultSpec(FaultKind.NODE_CRASH, at_s=20.0, duration_s=30.0, target=2),
    FaultSpec(FaultKind.BROKER_OUTAGE, at_s=45.0, duration_s=12.0),
    FaultSpec(FaultKind.SENSOR_SPIKE, at_s=70.0, duration_s=8.0, target=4, magnitude=2000.0),
]


def _run(seed, extra=3):
    drill = FaultDrill(DrillConfig(seed=seed, n_nodes=8, n_jobs=10,
                                   power_budget_w=8000.0, submit_horizon_s=60.0))
    return drill.run(CAMPAIGN, extra_random_faults=extra)


class TestDrillDeterminism:
    def test_same_seed_byte_identical_event_log(self):
        a, b = _run(seed=42), _run(seed=42)
        assert a.log.to_jsonl() == b.log.to_jsonl()
        assert a.log.digest() == b.log.digest()

    def test_same_seed_identical_summary(self):
        a, b = _run(seed=42), _run(seed=42)
        assert a.summary == b.summary

    def test_different_seed_differs(self):
        a, c = _run(seed=42), _run(seed=43)
        assert a.log.digest() != c.log.digest()
        assert a.summary != c.summary

    def test_scripted_campaign_only_is_also_deterministic(self):
        a, b = _run(seed=1, extra=0), _run(seed=1, extra=0)
        assert a.log.to_jsonl() == b.log.to_jsonl()


class TestInjectorDeterminism:
    def test_random_specs_pure_function_of_seed(self):
        def draw(seed):
            inj = FaultInjector(Environment(), seed=seed)
            return inj.random_specs(
                10, horizon_s=100.0,
                kinds=[FaultKind.SENSOR_SPIKE, FaultKind.NODE_CRASH],
                targets=range(8), magnitude_range=(10.0, 500.0),
            )
        assert draw(5) == draw(5)
        assert draw(5) != draw(6)

    def test_specs_sorted_by_time(self):
        inj = FaultInjector(Environment(), seed=3)
        specs = inj.random_specs(20, horizon_s=50.0, kinds=[FaultKind.SENSOR_DROPOUT],
                                 targets=range(4))
        assert [s.at_s for s in specs] == sorted(s.at_s for s in specs)


class TestEventLogCanonicalForm:
    def test_field_order_insensitive(self):
        a, b = TelemetryEventLog(), TelemetryEventLog()
        a.append(1.0, "x", alpha=1, beta=2)
        b.append(1.0, "x", beta=2, alpha=1)
        assert a.to_jsonl() == b.to_jsonl()
        assert a.digest() == b.digest()

    def test_numpy_scalars_coerced(self):
        a, b = TelemetryEventLog(), TelemetryEventLog()
        a.append(np.float64(2.0), "x", v=np.int64(3))
        b.append(2.0, "x", v=3)
        assert a.to_jsonl() == b.to_jsonl()

    def test_digest_sensitive_to_content(self):
        a, b = TelemetryEventLog(), TelemetryEventLog()
        a.append(1.0, "x", v=1)
        b.append(1.0, "x", v=2)
        assert a.digest() != b.digest()
