"""Tests for the MQTT-semantics broker."""

import pytest
from hypothesis import given, strategies as st

from repro.monitoring import (
    MqttBroker,
    topic_matches,
    validate_filter,
    validate_topic,
)


class TestTopicValidation:
    def test_publish_topic_rejects_wildcards(self):
        with pytest.raises(ValueError):
            validate_topic("a/+/b")
        with pytest.raises(ValueError):
            validate_topic("a/#")
        with pytest.raises(ValueError):
            validate_topic("")

    def test_filter_hash_must_be_last(self):
        validate_filter("a/b/#")
        with pytest.raises(ValueError):
            validate_filter("a/#/b")

    def test_filter_wildcards_must_fill_level(self):
        with pytest.raises(ValueError):
            validate_filter("a/b#")
        with pytest.raises(ValueError):
            validate_filter("a/b+/c")
        validate_filter("+/+/+")


class TestTopicMatching:
    @pytest.mark.parametrize(
        "filt,topic,expected",
        [
            ("a/b/c", "a/b/c", True),
            ("a/b/c", "a/b/d", False),
            ("a/+/c", "a/b/c", True),
            ("a/+/c", "a/b/d", False),
            ("a/#", "a/b/c/d", True),
            # Per MQTT 3.1.1, "sport/#" also matches "sport" itself.
            ("a/#", "a", True),
            ("b/#", "a", False),
            ("#", "anything/at/all", True),
            ("+", "one", True),
            ("+", "one/two", False),
            ("davide/+/power/+", "davide/node3/power/gpu0", True),
            ("davide/+/power/#", "davide/node3/power/gpu0", True),
            ("a/b", "a/b/c", False),
            ("a/b/c", "a/b", False),
        ],
    )
    def test_matching_table(self, filt, topic, expected):
        assert topic_matches(filt, topic) is expected


class TestBrokerRouting:
    def test_exact_topic_delivery(self):
        broker = MqttBroker()
        sub = broker.connect("sub")
        sub.subscribe("davide/node0/power/node")
        broker.publish("davide/node0/power/node", {"w": 1500})
        msg = sub.poll()
        assert msg.payload == {"w": 1500}
        assert sub.poll() is None

    def test_wildcard_fanout(self):
        broker = MqttBroker()
        agents = [broker.connect(f"agent{i}") for i in range(3)]
        agents[0].subscribe("davide/+/power/node")  # per-node aggregator
        agents[1].subscribe("davide/node1/#")       # node-1 profiler
        agents[2].subscribe("davide/node2/power/gpu0")  # specific rail
        broker.publish("davide/node1/power/node", 1)
        broker.publish("davide/node2/power/node", 2)
        broker.publish("davide/node2/power/gpu0", 3)
        assert len(agents[0].drain()) == 2
        assert len(agents[1].drain()) == 1
        assert len(agents[2].drain()) == 1

    def test_no_delivery_without_match(self):
        broker = MqttBroker()
        sub = broker.connect("sub")
        sub.subscribe("davide/node0/temp")
        broker.publish("davide/node0/power/node", 1)
        assert sub.poll() is None

    def test_multiple_subscriptions_same_client_duplicate_delivery(self):
        # MQTT delivers once per matching subscription for QoS 0 brokers
        # that don't de-duplicate overlapping filters; we document ours
        # delivers per-subscription.
        broker = MqttBroker()
        sub = broker.connect("sub")
        sub.subscribe("a/#")
        sub.subscribe("a/b")
        broker.publish("a/b", 1)
        assert len(sub.drain()) == 2

    def test_unsubscribe_stops_delivery(self):
        broker = MqttBroker()
        sub = broker.connect("sub")
        sub.subscribe("a/b")
        sub.unsubscribe("a/b")
        broker.publish("a/b", 1)
        assert sub.poll() is None

    def test_disconnect_removes_all_subscriptions(self):
        broker = MqttBroker()
        sub = broker.connect("sub")
        sub.subscribe("a/#")
        sub.subscribe("b/+")
        broker.disconnect(sub)
        broker.publish("a/x", 1)
        broker.publish("b/y", 1)
        assert sub.poll() is None
        assert broker.client_count == 0

    def test_connect_same_id_returns_same_client(self):
        broker = MqttBroker()
        assert broker.connect("x") is broker.connect("x")

    def test_counters(self):
        broker = MqttBroker()
        a = broker.connect("a")
        b = broker.connect("b")
        a.subscribe("t")
        b.subscribe("t")
        broker.publish("t", 1)
        assert broker.published_count == 1
        assert broker.delivered_count == 2


class TestRetainedMessages:
    def test_late_subscriber_gets_retained(self):
        broker = MqttBroker()
        broker.publish("davide/node0/power/node", 1500, retain=True)
        late = broker.connect("late")
        late.subscribe("davide/+/power/node")
        msg = late.poll()
        assert msg.payload == 1500
        assert msg.retain

    def test_retained_replaced_by_newer(self):
        broker = MqttBroker()
        broker.publish("t", 1, retain=True)
        broker.publish("t", 2, retain=True)
        sub = broker.connect("s")
        sub.subscribe("t")
        assert sub.poll().payload == 2

    def test_retained_cleared_by_none_payload(self):
        broker = MqttBroker()
        broker.publish("t", 1, retain=True)
        broker.publish("t", None, retain=True)
        sub = broker.connect("s")
        sub.subscribe("t")
        assert sub.poll() is None
        assert broker.retained_topics() == []

    def test_retained_topics_listing(self):
        broker = MqttBroker()
        broker.publish("b", 1, retain=True)
        broker.publish("a", 1, retain=True)
        assert broker.retained_topics() == ["a", "b"]


class TestQos:
    def test_invalid_qos_rejected(self):
        broker = MqttBroker()
        sub = broker.connect("s")
        with pytest.raises(ValueError):
            sub.subscribe("t", qos=2)
        with pytest.raises(ValueError):
            broker.publish("t", 1, qos=2)

    def test_qos1_tracked_until_ack(self):
        broker = MqttBroker()
        sub = broker.connect("s")
        sub.subscribe("t", qos=1)
        broker.publish("t", 1, qos=1)
        msg = sub.poll()
        assert sub.inflight_count == 1
        sub.acknowledge(msg)
        assert sub.inflight_count == 0

    def test_qos_downgraded_to_subscription_qos(self):
        broker = MqttBroker()
        sub = broker.connect("s")
        sub.subscribe("t", qos=0)
        broker.publish("t", 1, qos=1)
        sub.poll()
        assert sub.inflight_count == 0  # effective QoS 0

    def test_redelivery_sets_duplicate_flag(self):
        broker = MqttBroker()
        sub = broker.connect("s")
        sub.subscribe("t", qos=1)
        broker.publish("t", 1, qos=1)
        first = sub.poll()
        assert not first.duplicate
        dups = sub.redeliver_inflight()
        assert len(dups) == 1
        redelivered = sub.poll()
        assert redelivered.duplicate
        assert redelivered.message_id == first.message_id

    def test_ack_stops_redelivery(self):
        broker = MqttBroker()
        sub = broker.connect("s")
        sub.subscribe("t", qos=1)
        broker.publish("t", 1, qos=1)
        sub.acknowledge(sub.poll())
        assert sub.redeliver_inflight() == []


class TestInboxOverflow:
    def test_oldest_dropped_and_counted(self):
        broker = MqttBroker()
        sub = broker.connect("slow", inbox_limit=3)
        sub.subscribe("t")
        for i in range(5):
            broker.publish("t", i)
        assert sub.dropped_count == 2
        assert [m.payload for m in sub.drain()] == [2, 3, 4]

    def test_callback_bypasses_inbox(self):
        broker = MqttBroker()
        got = []
        sub = broker.connect("cb")
        sub.on_message = got.append
        sub.subscribe("t")
        broker.publish("t", 42)
        assert len(got) == 1 and got[0].payload == 42
        assert sub.poll() is None


class TestClockIntegration:
    def test_timestamps_use_broker_clock(self):
        now = {"t": 100.0}
        broker = MqttBroker(clock=lambda: now["t"])
        sub = broker.connect("s")
        sub.subscribe("t")
        broker.publish("t", 1)
        assert sub.poll().timestamp == 100.0
        now["t"] = 200.0
        broker.publish("t", 2)
        assert sub.poll().timestamp == 200.0


topic_level = st.text(alphabet="abcxyz0123456789", min_size=1, max_size=4)


@given(st.lists(topic_level, min_size=1, max_size=5))
def test_filter_identical_to_topic_always_matches(levels):
    topic = "/".join(levels)
    assert topic_matches(topic, topic)


@given(st.lists(topic_level, min_size=1, max_size=5), st.integers(min_value=0, max_value=4))
def test_plus_wildcard_matches_any_single_level(levels, idx):
    topic = "/".join(levels)
    filt_levels = list(levels)
    filt_levels[min(idx, len(levels) - 1)] = "+"
    assert topic_matches("/".join(filt_levels), topic)


@given(st.lists(topic_level, min_size=2, max_size=6))
def test_hash_matches_any_suffix(levels):
    topic = "/".join(levels)
    assert topic_matches(levels[0] + "/#", topic)
