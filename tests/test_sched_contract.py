"""Property tests for the shared arithmetic contract, in isolation.

``repro.scheduler.contract`` is the float kernel all three simulator
cores share; the differential harness pins whole simulations, while
these tests pin the helpers themselves: ``_PowerLedger`` bookkeeping,
``_set_speed``/``_settle`` segment and ETA arithmetic, the
accumulated-stretch ledger, and ``_resolve_ledger``'s trim algebra.
Seeded ``random.Random`` streams generate the call sequences, so every
failure is reproducible from the parametrized seed.
"""

import random

import numpy as np
import pytest

from repro.scheduler.contract import (
    _ETA_EPS,
    _PowerLedger,
    _Running,
    _resolve_ledger,
    _set_speed,
    _settle,
)
from repro.scheduler.job import Job, JobRecord

IDLE_W = 300.0


def _job(rng, jid):
    n_nodes = rng.randrange(1, 9)
    return Job(
        job_id=jid,
        user=f"u{jid % 3}",
        app="qe",
        n_nodes=n_nodes,
        walltime_req_s=rng.uniform(100.0, 5000.0),
        submit_time_s=rng.uniform(0.0, 1000.0),
        true_runtime_s=rng.uniform(50.0, 3000.0),
        # Straddle the idle floor: some jobs have zero dynamic share.
        true_power_per_node_w=rng.uniform(0.5 * IDLE_W, 6 * IDLE_W),
    )


class TestPowerLedger:
    @pytest.mark.parametrize("seed", range(20))
    def test_incremental_matches_replay(self, seed):
        """The ledger is pure state: replaying the identical add/remove
        sequence on a fresh ledger lands on bit-identical floats — the
        exact property the cross-core contract relies on."""
        rng = random.Random(seed)
        ops = []
        active = []
        for jid in range(60):
            if active and rng.random() < 0.4:
                ops.append(("remove", active.pop(rng.randrange(len(active)))))
            else:
                job = _job(rng, jid)
                active.append(job)
                ops.append(("add", job))
        a, b = _PowerLedger(IDLE_W), _PowerLedger(IDLE_W)
        for name, job in ops:
            getattr(a, name)(job)
            getattr(b, name)(job)
            assert a.busy_nodes == b.busy_nodes
            assert a.running_power_w == b.running_power_w
            assert a.running_dynamic_w == b.running_dynamic_w

    @pytest.mark.parametrize("seed", range(20))
    def test_incremental_tracks_recompute(self, seed):
        """Against a from-scratch recompute: node counts are integer
        arithmetic (exact), power sums are float-close (the incremental
        order differs from the fresh-sum order, so only ULP drift)."""
        rng = random.Random(100 + seed)
        ledger = _PowerLedger(IDLE_W)
        active: list[Job] = []
        for jid in range(80):
            if active and rng.random() < 0.45:
                job = active.pop(rng.randrange(len(active)))
                ledger.remove(job)
            else:
                job = _job(rng, jid)
                active.append(job)
                ledger.add(job)
            assert ledger.busy_nodes == sum(j.n_nodes for j in active)
            assert ledger.running_power_w == pytest.approx(
                sum(j.true_power_w for j in active), abs=1e-6)
            assert ledger.running_dynamic_w == pytest.approx(
                sum(max(j.true_power_w - j.n_nodes * IDLE_W, 0.0) for j in active),
                abs=1e-6)
        for job in active:
            ledger.remove(job)
        assert ledger.busy_nodes == 0
        assert ledger.running_power_w == pytest.approx(0.0, abs=1e-6)
        assert ledger.running_dynamic_w == pytest.approx(0.0, abs=1e-6)

    def test_sub_floor_job_never_contributes_dynamic(self):
        ledger = _PowerLedger(IDLE_W)
        cold = Job(job_id=0, user="u", app="io", n_nodes=2, walltime_req_s=100.0,
                   submit_time_s=0.0, true_runtime_s=50.0,
                   true_power_per_node_w=0.5 * IDLE_W)
        ledger.add(cold)
        assert ledger.running_dynamic_w == 0.0
        ledger.remove(cold)
        assert ledger.running_dynamic_w == 0.0


def _fresh_running(job, now=0.0):
    rec = JobRecord(job=job)
    rec.start_time_s = now
    return _Running(rec, job.true_runtime_s, now)


class TestSegmentArithmetic:
    @pytest.mark.parametrize("seed", range(20))
    def test_eta_is_stored_not_recomputed(self, seed):
        """After every _set_speed the stored ETA equals
        ``now + remaining/speed`` with the floats of *that* moment;
        settling exactly at the ETA leaves only rounding-level work."""
        rng = random.Random(seed)
        job = _job(rng, 0)
        r = _fresh_running(job)
        now = 0.0
        assert _set_speed(r, 1.0, 1.0, IDLE_W, now)
        assert r.eta_s == now + r.remaining_work_s / r.speed
        for _ in range(10):
            # Advance toward — never past — the ETA: a real core would
            # complete the job there.
            now += rng.uniform(0.0, 0.4) * (r.eta_s - now)
            rho = rng.choice((1.0, rng.uniform(0.3, 0.999)))
            speed = rho**0.75
            prev_eta = r.eta_s
            if _set_speed(r, rho, speed, IDLE_W, now):
                # Settled to `now`: the stored ETA is exactly the floats
                # of this moment.
                assert r.eta_s == now + r.remaining_work_s / r.speed
            else:
                # No-op trim: the segment stays open, the ETA untouched.
                assert r.eta_s == prev_eta
        _settle(r, r.eta_s)
        assert r.remaining_work_s == pytest.approx(0.0, abs=_ETA_EPS)

    def test_full_speed_grant_and_eta_are_exact(self):
        """rho >= 1: granted power is the job's true power *exactly* and
        the ETA is ``now + remaining`` exactly — the identities the array
        core's flat FIFO loop leans on."""
        job = Job(job_id=0, user="u", app="qe", n_nodes=3, walltime_req_s=900.0,
                  submit_time_s=0.0, true_runtime_s=617.3, true_power_per_node_w=1837.1)
        r = _fresh_running(job, now=123.456)
        changed = _set_speed(r, 1.0, 1.0, IDLE_W, 123.456)
        assert changed
        assert r.granted_power_w == job.true_power_w
        assert r.eta_s == 123.456 + 617.3

    def test_noop_set_speed_keeps_segment_open(self):
        rng = random.Random(3)
        r = _fresh_running(_job(rng, 0))
        _set_speed(r, 1.0, 1.0, IDLE_W, 0.0)
        eta, seg_start = r.eta_s, r.seg_start_s
        assert not _set_speed(r, 1.0, 1.0, IDLE_W, 50.0)
        assert r.eta_s == eta and r.seg_start_s == seg_start
        assert r.record.energy_j == 0.0  # nothing settled

    def test_settle_zero_dt_is_noop(self):
        rng = random.Random(4)
        r = _fresh_running(_job(rng, 0))
        _set_speed(r, 0.7, 0.7**0.75, IDLE_W, 0.0)
        before = (r.remaining_work_s, r.record.energy_j, r.record.stretch)
        _settle(r, 0.0)
        assert (r.remaining_work_s, r.record.energy_j, r.record.stretch) == before

    @pytest.mark.parametrize("seed", range(20))
    def test_accumulated_stretch_closed_form(self, seed):
        """Across a random trim/restore history: elapsed is the ordered
        sum of segment dts, work the ordered sum of dt*speed, energy the
        ordered sum of granted*dt — and stretch is exactly their stored
        quotient (never the max-instantaneous 1/speed)."""
        rng = random.Random(200 + seed)
        job = _job(rng, 0)
        r = _fresh_running(job)
        rec = r.record

        def grant(rho):
            if rho >= 1.0:
                return job.true_power_w
            jf = job.n_nodes * IDLE_W
            jd = job.true_power_w - jf
            return jf + (jd if jd > 0.0 else 0.0) * rho

        now = 0.0
        events = [(0.0, 1.0, 1.0)]
        for _ in range(12):
            now += rng.uniform(1.0, 300.0)
            rho = rng.choice((1.0, rng.uniform(0.3, 0.999)))
            events.append((now, rho, rho**0.75))
        end = now + 10.0

        # Shadow ledger: same branch, same float ops, same order as
        # _set_speed/_settle — a no-op trim leaves the segment open.
        elapsed = work = energy = 0.0
        seg_start, cur_speed, cur_granted = 0.0, 0.0, -1.0
        for t, rho, speed in events:
            g = grant(rho)
            if speed != cur_speed or g != cur_granted:
                dt = t - seg_start
                if dt > 0.0:
                    elapsed += dt
                    work += dt * cur_speed
                    energy += cur_granted * dt
                seg_start, cur_speed, cur_granted = t, speed, g
            _set_speed(r, rho, speed, IDLE_W, t)
        dt = end - seg_start
        elapsed += dt
        work += dt * cur_speed
        energy += cur_granted * dt
        _settle(r, end)

        assert rec.elapsed_running_s == elapsed
        assert rec.work_progressed_s == work
        assert rec.energy_j == energy
        # The stored stretch is the exact quotient of the stored ledgers.
        assert rec.stretch == rec.elapsed_running_s / rec.work_progressed_s
        assert rec.stretch >= 1.0 - 1e-12

    def test_untrimmed_identities_hold(self):
        """The flat-loop flush identities: for a job that runs one
        full-speed segment, energy == power*dt, elapsed == work == dt
        and stretch == 1.0 — bit-for-bit, not approximately."""
        job = Job(job_id=0, user="u", app="qe", n_nodes=2, walltime_req_s=500.0,
                  submit_time_s=0.0, true_runtime_s=431.7, true_power_per_node_w=1729.3)
        r = _fresh_running(job)
        _set_speed(r, 1.0, 1.0, IDLE_W, 0.0)
        dt = 431.7
        _settle(r, dt)
        rec = r.record
        assert rec.energy_j == job.true_power_w * dt
        assert rec.elapsed_running_s == dt
        assert rec.work_progressed_s == dt
        assert rec.stretch == 1.0


class TestResolveLedger:
    def _ledger(self, rng, n_jobs):
        ledger = _PowerLedger(IDLE_W)
        jobs = [_job(rng, j) for j in range(n_jobs)]
        for job in jobs:
            ledger.add(job)
        return ledger, jobs

    def test_uncapped_short_circuits(self):
        rng = random.Random(0)
        ledger, _ = self._ledger(rng, 10)
        system, demand, rho, speed = _resolve_ledger(ledger, 64, None, 0.3, 0.75)
        assert rho == 1.0 and speed == 1.0 and system == demand
        assert demand == (64 - ledger.busy_nodes) * IDLE_W + ledger.running_power_w

    @pytest.mark.parametrize("seed", range(20))
    def test_trim_algebra(self, seed):
        rng = random.Random(300 + seed)
        ledger, jobs = self._ledger(rng, rng.randrange(1, 12))
        n_alive = ledger.busy_nodes + rng.randrange(0, 20)
        rho_min, exponent = 0.3, 0.75
        uncapped_demand = _resolve_ledger(ledger, n_alive, None, rho_min, exponent)[1]
        cap = rng.uniform(0.4, 1.2) * uncapped_demand
        system, demand, rho, speed = _resolve_ledger(
            ledger, n_alive, cap, rho_min, exponent)
        assert demand == uncapped_demand
        assert rho_min <= rho <= 1.0 or rho == 1.0
        assert speed == rho**exponent  # exact: same expression, same floats
        assert system <= demand * (1 + 1e-12)
        if rho < 1.0:
            floor = n_alive * IDLE_W
            assert system == floor + ledger.running_dynamic_w * rho
            if rho > rho_min:
                # Not clipped: with every job above the idle floor the
                # trim lands exactly on the cap; sub-floor jobs push the
                # rho denominator below running_dynamic_w, so the system
                # settles at-or-above it (still the closest feasible).
                if all(j.true_power_w > j.n_nodes * IDLE_W for j in jobs):
                    assert system == pytest.approx(cap, rel=1e-9)
                else:
                    assert system >= cap - 1e-6
        else:
            assert system == demand

    def test_cap_below_floor_clips_at_speed_floor(self):
        rng = random.Random(1)
        ledger, _ = self._ledger(rng, 8)
        system, demand, rho, speed = _resolve_ledger(
            ledger, ledger.busy_nodes, 1.0, 0.3, 0.75)
        assert rho == 0.3 and speed == 0.3**0.75
        assert system > 1.0  # demand stays above the impossible cap

    def test_no_dynamic_power_means_no_trim(self):
        ledger = _PowerLedger(IDLE_W)
        cold = Job(job_id=0, user="u", app="io", n_nodes=4, walltime_req_s=100.0,
                   submit_time_s=0.0, true_runtime_s=50.0,
                   true_power_per_node_w=0.8 * IDLE_W)
        ledger.add(cold)
        system, demand, rho, speed = _resolve_ledger(ledger, 4, 100.0, 0.3, 0.75)
        assert rho == 1.0 and speed == 1.0 and system == demand

    @pytest.mark.parametrize("seed", range(10))
    def test_rho_monotone_in_cap(self, seed):
        rng = random.Random(400 + seed)
        ledger, _ = self._ledger(rng, 6)
        n_alive = ledger.busy_nodes + 4
        demand = _resolve_ledger(ledger, n_alive, None, 0.3, 0.75)[1]
        caps = sorted(rng.uniform(0.2, 1.1) * demand for _ in range(6))
        rhos = [_resolve_ledger(ledger, n_alive, c, 0.3, 0.75)[2] for c in caps]
        assert rhos == sorted(rhos)


class TestNumpyScalarParity:
    """The array core evaluates contract expressions elementwise on
    float64 lanes; IEEE-754 says each lane matches the CPython-float
    evaluation bit for bit.  Pin that for the expressions it vectorizes."""

    @pytest.mark.parametrize("seed", range(10))
    def test_eta_and_grant_lanes_match_scalars(self, seed):
        rng = random.Random(500 + seed)
        jobs = [_job(rng, j) for j in range(64)]
        now = rng.uniform(0.0, 1e4)
        rho = rng.uniform(0.3, 0.999)
        speed = rho**0.75
        remaining = np.array([j.true_runtime_s for j in jobs])
        power = np.array([j.true_power_w for j in jobs])
        floor = np.array([j.n_nodes * IDLE_W for j in jobs])
        dynamic = power - floor
        granted = floor + np.maximum(dynamic, 0.0) * rho
        eta = now + remaining / speed
        for i, job in enumerate(jobs):
            jf = job.n_nodes * IDLE_W
            jd = job.true_power_w - jf
            assert granted[i] == jf + (jd if jd > 0.0 else 0.0) * rho
            assert eta[i] == now + job.true_runtime_s / speed

    @pytest.mark.parametrize("seed", range(10))
    def test_settle_lanes_match_scalars(self, seed):
        rng = random.Random(600 + seed)
        n = 48
        dt = rng.uniform(1.0, 500.0)
        speed = np.array([rng.choice((1.0, rng.uniform(0.3, 1.0))) for _ in range(n)])
        granted = np.array([rng.uniform(300.0, 9000.0) for _ in range(n)])
        energy0 = np.array([rng.uniform(0.0, 1e6) for _ in range(n)])
        work_v = dt * speed
        energy_v = energy0 + granted * dt
        for i in range(n):
            assert work_v[i] == dt * float(speed[i])
            assert energy_v[i] == float(energy0[i]) + float(granted[i]) * dt
