"""Design-space exploration harness: spaces, objectives, env, searchers.

The load-bearing properties pinned here:

* **Trace digest invariance** — the same ``(space, objective, searcher,
  seed, budget)`` produces the identical trace digest whether it runs
  serially or pooled, against a cold store or a warm one.
* **Warm replay is free** — re-running an identical search against its
  own store performs zero simulations (100% cache hits) and still
  digests identically.
* **The evolutionary searcher earns its keep** — on the smoke problem
  it finds a better optimum than random search at equal budget.
"""

import json

import numpy as np
import pytest

from repro.explore import (
    BATCH_SIZE,
    Categorical,
    Continuous,
    DesignSpace,
    ExplorationEnv,
    ExplorationTrace,
    Integer,
    Objective,
    explore,
)
from repro.observability import Observability
from repro.scheduler import CampaignConfig, MemoryResultStore, scenario_key

CONFIG = CampaignConfig(n_nodes=8, n_jobs=20, root_seed=11, load_factor=1.1)


def small_space() -> DesignSpace:
    return DesignSpace({
        "cap_w": Continuous(8_000.0, 14_000.0),
        "backfill_depth": Integer(1, 8),
        "policy": Categorical(("easy", "power-aware")),
    })


def small_objective() -> Objective:
    return Objective.blend({"total_energy_j": 1.0, "p95_wait_s": 5e4})


# ---------------------------------------------------------------------------
# domains and spaces
# ---------------------------------------------------------------------------

class TestDomains:
    def test_continuous_sample_grid_clip(self):
        knob = Continuous(1.0, 3.0)
        rng = np.random.default_rng(0)
        assert all(1.0 <= knob.sample(rng) <= 3.0 for _ in range(50))
        assert knob.grid(3) == [1.0, 2.0, 3.0]
        assert knob.grid(1) == [2.0]
        assert knob.clip(99.0) == 3.0 and knob.clip(-1) == 1.0

    def test_integer_sample_is_inclusive_and_grid_dedupes(self):
        knob = Integer(2, 4)
        rng = np.random.default_rng(0)
        seen = {knob.sample(rng) for _ in range(200)}
        assert seen == {2, 3, 4}
        assert knob.grid(10) == [2, 3, 4]
        assert knob.grid(2) == [2, 4]

    def test_integer_mutate_always_moves(self):
        knob = Integer(0, 10)
        rng = np.random.default_rng(3)
        assert any(knob.mutate(5, rng) != 5 for _ in range(10))

    def test_categorical_mutate_changes_choice(self):
        knob = Categorical(("a", "b", "c"))
        rng = np.random.default_rng(0)
        assert all(knob.mutate("a", rng) != "a" for _ in range(20))
        assert Categorical(("only",)).mutate("only", rng) == "only"

    def test_domain_validation(self):
        with pytest.raises(ValueError):
            Continuous(2.0, 2.0)
        with pytest.raises(ValueError):
            Integer(5, 4)
        with pytest.raises(ValueError):
            Categorical(())
        with pytest.raises(ValueError):
            Categorical(("x", "x"))


class TestDesignSpace:
    def test_validate_clips_and_rejects(self):
        space = small_space()
        point = space.validate(
            {"cap_w": 99e9, "backfill_depth": 0, "policy": "easy"})
        assert point["cap_w"] == 14_000.0 and point["backfill_depth"] == 1
        with pytest.raises(KeyError, match="unknown knob"):
            space.validate({"cap_w": 9e3, "backfill_depth": 2,
                            "policy": "easy", "bogus": 1})
        with pytest.raises(KeyError, match="missing"):
            space.validate({"cap_w": 9e3})

    def test_grid_is_cartesian_and_ordered(self):
        space = small_space()
        lattice = space.grid(resolution=2)
        assert len(lattice) == 2 * 2 * 2 == space.size(resolution=2)
        assert lattice[0] == {"cap_w": 8_000.0, "backfill_depth": 1,
                              "policy": "easy"}
        # the last knob varies fastest
        assert lattice[1]["policy"] == "power-aware"

    def test_sample_and_mutate_stay_in_space(self):
        space = small_space()
        rng = np.random.default_rng(7)
        for _ in range(20):
            p = space.sample(rng)
            assert space.validate(p) == p
            q = space.mutate(p, rng)
            assert space.validate(q) == q
            assert q != p  # at least one knob always flips


# ---------------------------------------------------------------------------
# objectives
# ---------------------------------------------------------------------------

class TestObjective:
    def test_unknown_metric_rejected(self):
        with pytest.raises(ValueError, match="unknown metric"):
            Objective.minimize("joules")

    def test_value_and_vector(self):
        obj = Objective.blend({"mean_wait_s": 2.0, "peak_power_w": 0.5})
        qos = {"mean_wait_s": 10.0, "peak_power_w": 100.0, "extra": 1.0}
        assert obj.vector(qos) == (10.0, 100.0)
        assert obj.value(qos) == 2.0 * 10.0 + 0.5 * 100.0

    def test_sense_drives_better_and_best(self):
        lo = Objective.minimize("mean_wait_s")
        hi = Objective.maximize("utilization")
        assert lo.better(1.0, 2.0) and not lo.better(2.0, 1.0)
        assert hi.better(2.0, 1.0)
        assert lo.best([3.0, 1.0, 2.0]) == 1
        assert hi.best([3.0, 1.0, 3.0]) == 0  # first wins ties

    def test_weight_arity_checked(self):
        with pytest.raises(ValueError, match="one weight per metric"):
            Objective(metrics=("mean_wait_s", "peak_power_w"),
                      weights=(1.0,))


# ---------------------------------------------------------------------------
# the environment
# ---------------------------------------------------------------------------

class TestExplorationEnv:
    def test_compile_routes_knobs_into_scenario(self):
        env = ExplorationEnv(small_space(), small_objective(), CONFIG)
        cell = env.compile(
            {"cap_w": 9e3, "backfill_depth": 4, "policy": "power-aware"})
        assert cell.policy == "power-aware"
        assert cell.cap_w == 9e3 and cell.backfill_depth == 4
        assert env.key(
            {"cap_w": 9e3, "backfill_depth": 4, "policy": "power-aware"}
        ) == scenario_key(CONFIG, cell)

    def test_policy_must_come_from_somewhere(self):
        space = DesignSpace({"cap_w": Continuous(8e3, 14e3)})
        with pytest.raises(ValueError, match="policy"):
            ExplorationEnv(space, small_objective(), CONFIG)
        ExplorationEnv(space, small_objective(), CONFIG,
                       base={"policy": "easy"})  # ok

    def test_base_and_knobs_must_not_overlap(self):
        with pytest.raises(KeyError, match="both as knobs and in base"):
            ExplorationEnv(small_space(), small_objective(), CONFIG,
                           base={"policy": "easy"})

    def test_non_scenario_knob_rejected(self):
        space = DesignSpace({"n_nodes": Integer(4, 8)})
        with pytest.raises(KeyError, match="scenario fields"):
            ExplorationEnv(space, small_objective(), CONFIG)

    def test_evaluate_dedupes_within_batch(self):
        env = ExplorationEnv(small_space(), small_objective(), CONFIG)
        p = {"cap_w": 9e3, "backfill_depth": 4, "policy": "easy"}
        steps = env.evaluate([p, dict(p)])
        assert steps[0].cache_hit is False
        assert steps[1].cache_hit is True
        assert steps[0].result_digest == steps[1].result_digest
        assert steps[0].fitness == steps[1].fitness

    def test_step_returns_observation_fitness_info(self):
        env = ExplorationEnv(small_space(), small_objective(), CONFIG)
        env.reset()
        p = {"cap_w": 9e3, "backfill_depth": 4, "policy": "easy"}
        obs, fitness, info = env.step(p)
        assert obs["t"] == 1 and obs["best_fitness"] == fitness
        assert info["key"] == env.key(p)
        assert set(info) >= {"result_digest", "cache_hit", "qos", "vector"}
        # revisiting the same point replays from the store
        _, fitness2, info2 = env.step(p)
        assert fitness2 == fitness and info2["cache_hit"] is True

    def test_counters_land_in_ops_report(self):
        obs = Observability()
        env = ExplorationEnv(small_space(), small_objective(), CONFIG,
                             obs=obs)
        p = {"cap_w": 9e3, "backfill_depth": 4, "policy": "easy"}
        env.evaluate([p, dict(p)])
        section = obs.ops_report()["exploration"]
        assert section["points"] == 2.0
        assert section["simulations"] == 1.0
        assert section["cache_hits"] == 1.0
        assert section["batches"] == 1.0


# ---------------------------------------------------------------------------
# explore() determinism — the acceptance criteria
# ---------------------------------------------------------------------------

class TestExploreDeterminism:
    @pytest.mark.parametrize("searcher", ["random", "grid", "evolutionary"])
    def test_digest_reproducible_per_searcher(self, searcher):
        kw = dict(searcher=searcher, budget=6, seed=4, config=CONFIG)
        a = explore(small_space(), small_objective(), **kw)
        b = explore(small_space(), small_objective(), **kw)
        assert a.digest() == b.digest()
        assert [s.point for s in a.steps] == [s.point for s in b.steps]

    def test_digest_invariant_to_pool_size(self):
        kw = dict(searcher="evolutionary", budget=10, seed=2, config=CONFIG)
        serial = explore(small_space(), small_objective(), processes=1, **kw)
        pooled = explore(small_space(), small_objective(), processes=2, **kw)
        assert serial.digest() == pooled.digest()

    def test_warm_rerun_is_all_hits_and_digest_identical(self):
        store = MemoryResultStore()
        kw = dict(searcher="random", budget=8, seed=6, config=CONFIG,
                  cache=store)
        cold = explore(small_space(), small_objective(), **kw)
        warm = explore(small_space(), small_objective(), **kw)
        assert warm.digest() == cold.digest()
        assert warm.n_simulated == 0
        assert warm.n_cache_hits == len(warm.steps)
        assert warm.cache_hit_fraction == 1.0

    def test_different_seed_changes_trajectory(self):
        a = explore(small_space(), small_objective(), searcher="random",
                    budget=6, seed=0, config=CONFIG)
        b = explore(small_space(), small_objective(), searcher="random",
                    budget=6, seed=1, config=CONFIG)
        assert a.digest() != b.digest()

    def test_searcher_instance_and_name_agree(self):
        from repro.scheduler import make_searcher
        kw = dict(budget=6, seed=4, config=CONFIG)
        by_name = explore(small_space(), small_objective(),
                          searcher="evolutionary", **kw)
        by_instance = explore(small_space(), small_objective(),
                              searcher=make_searcher("evolutionary"), **kw)
        assert by_name.digest() == by_instance.digest()

    def test_grid_searcher_walks_the_lattice_in_order(self):
        space = DesignSpace({"backfill_depth": Integer(1, 2),
                             "policy": Categorical(("fifo", "easy"))})
        trace = explore(space, small_objective(), searcher="grid",
                        budget=6, seed=0, config=CONFIG)
        points = [s.point for s in trace.steps]
        assert points[:4] == space.grid(3)[:4]
        assert points[4] == points[0]  # budget past the lattice cycles
        assert trace.steps[4].cache_hit is True


class TestExploreSearchQuality:
    def test_evolutionary_beats_random_on_smoke_problem(self):
        """Same budget, same seed, smooth landscape (energy falls as the
        cap tightens): the adaptive searcher must find a better optimum.
        Everything is pinned, so this is a deterministic comparison, not
        a flaky statistical one.  The cap range is chosen to *bind* on
        the 8-node machine — a non-binding cap flattens the landscape
        and every searcher ties."""
        space = DesignSpace({"cap_w": Continuous(3_000.0, 9_000.0),
                             "backfill_depth": Integer(1, 8)})
        objective = Objective.blend(
            {"total_energy_j": 1.0, "p95_wait_s": 1e4})
        base = {"policy": "power-aware"}
        store = MemoryResultStore()
        kw = dict(budget=3 * BATCH_SIZE, seed=1, config=CONFIG, base=base,
                  cache=store)
        evo = explore(space, objective, searcher="evolutionary", **kw)
        rnd = explore(space, objective, searcher="random", **kw)
        assert objective.better(evo.best_fitness, rnd.best_fitness)

    def test_best_fitness_curve_is_monotone(self):
        trace = explore(small_space(), small_objective(),
                        searcher="evolutionary", budget=10, seed=3,
                        config=CONFIG)
        curve = trace.best_fitness_curve()
        assert len(curve) == 10
        assert all(b <= a for a, b in zip(curve, curve[1:]))  # sense=min
        assert curve[-1] == trace.best_fitness


class TestTraceArtifact:
    def test_to_dict_round_trips_through_json(self):
        trace = explore(small_space(), small_objective(), searcher="random",
                        budget=4, seed=9, config=CONFIG)
        blob = json.loads(trace.to_json())
        assert blob["digest"] == trace.digest()
        assert blob["best_index"] == trace.best_index
        assert len(blob["steps"]) == 4
        assert blob["best_fitness_curve"] == trace.best_fitness_curve()

    def test_digest_ignores_cache_hits_but_not_results(self):
        trace = explore(small_space(), small_objective(), searcher="random",
                        budget=3, seed=9, config=CONFIG)
        d0 = trace.digest()
        flipped = ExplorationTrace(
            space=trace.space, objective=trace.objective,
            searcher=trace.searcher, seed=trace.seed, budget=trace.budget,
            steps=[type(s)(**{**s.canonical(), "qos": s.qos,
                              "vector": s.vector, "cache_hit": True})
                   for s in trace.steps],
        )
        assert flipped.digest() == d0
        tampered = ExplorationTrace(
            space=trace.space, objective=trace.objective,
            searcher=trace.searcher, seed=trace.seed, budget=trace.budget,
            steps=list(trace.steps[:-1]) + [type(trace.steps[-1])(
                **{**trace.steps[-1].canonical(),
                   "result_digest": "0" * 64,
                   "qos": trace.steps[-1].qos,
                   "vector": trace.steps[-1].vector})],
        )
        assert tampered.digest() != d0

    def test_budget_validation(self):
        with pytest.raises(ValueError, match="positive budget"):
            explore(small_space(), small_objective(), budget=0,
                    config=CONFIG)
