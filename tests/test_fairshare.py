"""Tests for fairshare accounting and multifactor priority scheduling."""

import numpy as np
import pytest

from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    FairShareState,
    Job,
    JobRecord,
    MultifactorPriority,
    PriorityScheduler,
    WorkloadConfig,
    WorkloadGenerator,
)


def record(jid, user, nodes=2, runtime=100.0, energy=None, submit=0.0):
    job = Job(job_id=jid, user=user, app="qe", n_nodes=nodes, walltime_req_s=runtime * 2,
              submit_time_s=submit, true_runtime_s=runtime, true_power_per_node_w=1500.0)
    rec = JobRecord(job=job)
    rec.start_time_s = submit
    rec.end_time_s = submit + runtime
    rec.nodes = tuple(range(nodes))
    rec.energy_j = energy if energy is not None else 1500.0 * nodes * runtime
    return rec


class TestFairShareState:
    def test_idle_user_scores_one(self):
        fs = FairShareState()
        assert fs.fairshare_factor("nobody", now_s=0.0) == 1.0

    def test_hog_sinks_below_light_user(self):
        fs = FairShareState()
        fs.charge("hog", 1e9, now_s=0.0)
        fs.charge("light", 1e6, now_s=0.0)
        assert fs.fairshare_factor("hog", 0.0) < fs.fairshare_factor("light", 0.0)

    def test_usage_decays_with_half_life(self):
        fs = FairShareState(half_life_s=100.0)
        fs.charge("u", 1000.0, now_s=0.0)
        assert fs.usage("u", now_s=100.0) == pytest.approx(500.0)
        assert fs.usage("u", now_s=300.0) == pytest.approx(125.0)

    def test_energy_weighted_charging(self):
        fs = FairShareState()
        # Two equal node-hour jobs; one burned twice the joules.
        fs.charge_record(record(1, "gpu-heavy", energy=2e6), energy_weighted=True)
        fs.charge_record(record(2, "cpu-light", energy=1e6), energy_weighted=True)
        assert fs.fairshare_factor("gpu-heavy", 200.0) < fs.fairshare_factor("cpu-light", 200.0)

    def test_node_seconds_charging_ignores_energy(self):
        fs = FairShareState()
        fs.charge_record(record(1, "a", energy=2e6), energy_weighted=False)
        fs.charge_record(record(2, "b", energy=1e6), energy_weighted=False)
        assert fs.fairshare_factor("a", 200.0) == pytest.approx(fs.fairshare_factor("b", 200.0))

    def test_allocated_shares_shift_the_factor(self):
        fs = FairShareState(shares={"big": 3.0, "small": 1.0})
        fs.charge("big", 500.0, 0.0)
        fs.charge("small", 500.0, 0.0)
        # Equal usage, but 'big' is entitled to 3x the share.
        assert fs.fairshare_factor("big", 0.0) > fs.fairshare_factor("small", 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FairShareState(half_life_s=0.0)
        fs = FairShareState()
        with pytest.raises(ValueError):
            fs.charge("u", -1.0, 0.0)
        with pytest.raises(ValueError):
            fs.charge_record(JobRecord(job=record(1, "u").job))


class TestMultifactorPriority:
    def test_age_raises_priority(self):
        fs = FairShareState()
        prio = MultifactorPriority(fs)
        old = JobRecord(job=record(1, "u", submit=0.0).job)
        new = JobRecord(job=record(2, "u", submit=50_000.0).job)
        assert prio.score(old, now_s=60_000.0) > prio.score(new, now_s=60_000.0)

    def test_fairshare_dominates_by_default_weights(self):
        fs = FairShareState()
        fs.charge("hog", 1e9, 0.0)
        prio = MultifactorPriority(fs)
        hog_old = JobRecord(job=record(1, "hog", submit=0.0).job)
        fresh_new = JobRecord(job=record(2, "fresh", submit=500_000.0).job)
        # Even a week of age cannot outweigh a terrible fairshare.
        assert prio.score(fresh_new, 600_000.0) > prio.score(hog_old, 600_000.0)


class TestPriorityScheduler:
    def test_light_user_jumps_hog_in_queue(self):
        fs = FairShareState()
        fs.charge("hog", 1e9, 0.0)
        policy = PriorityScheduler(EasyBackfillScheduler(), MultifactorPriority(fs, total_nodes=4))
        jobs = [
            Job(job_id=0, user="hog", app="qe", n_nodes=4, walltime_req_s=200.0,
                submit_time_s=0.0, true_runtime_s=100.0, true_power_per_node_w=1500.0),
            Job(job_id=1, user="light", app="qe", n_nodes=4, walltime_req_s=200.0,
                submit_time_s=1.0, true_runtime_s=100.0, true_power_per_node_w=1500.0),
        ]
        result = ClusterSimulator(4, policy).run(jobs)
        recs = {r.job.job_id: r for r in result.records}
        # At t=1 the hog job is already running (nothing else existed at
        # t=0); but with both queued, light would go first — verify via a
        # third pair arriving together.
        jobs2 = [
            Job(job_id=0, user="blocker", app="qe", n_nodes=4, walltime_req_s=100.0,
                submit_time_s=0.0, true_runtime_s=50.0, true_power_per_node_w=1500.0),
            Job(job_id=1, user="hog", app="qe", n_nodes=4, walltime_req_s=200.0,
                submit_time_s=1.0, true_runtime_s=100.0, true_power_per_node_w=1500.0),
            Job(job_id=2, user="light", app="qe", n_nodes=4, walltime_req_s=200.0,
                submit_time_s=2.0, true_runtime_s=100.0, true_power_per_node_w=1500.0),
        ]
        result = ClusterSimulator(4, policy).run(jobs2)
        recs = {r.job.job_id: r for r in result.records}
        assert recs[2].start_time_s < recs[1].start_time_s  # light overtakes hog

    def test_equal_users_no_size_weight_reduce_to_fifo_order(self):
        # With one user (equal fairshare) and no size component, priority
        # is pure age — which is exactly submission order.
        fs = FairShareState()
        prio_fn = MultifactorPriority(fs, weight_size=0.0, total_nodes=45)
        policy = PriorityScheduler(EasyBackfillScheduler(), prio_fn)
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=60, cluster_nodes=45, load_factor=0.9, n_users=1),
            rng=np.random.default_rng(0),
        ).generate()
        prio = ClusterSimulator(45, policy).run(jobs)
        plain = ClusterSimulator(45, EasyBackfillScheduler()).run(jobs)
        assert prio.mean_wait_s() == pytest.approx(plain.mean_wait_s(), rel=1e-9)

    def test_composes_with_power_aware(self):
        from repro.scheduler import PowerAwareScheduler

        fs = FairShareState()
        inner = PowerAwareScheduler(60e3, predictor=lambda j: j.true_power_w)
        policy = PriorityScheduler(inner, MultifactorPriority(fs, total_nodes=45))
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=60, cluster_nodes=45, load_factor=1.0),
            rng=np.random.default_rng(1),
        ).generate()
        result = ClusterSimulator(45, policy).run(jobs)
        assert result.peak_power_w() <= 60e3 * 1.001
        assert policy.name == "priority+power-aware"
