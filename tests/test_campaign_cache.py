"""Cache-hit accounting and warm-vs-cold identity for ``run_campaign``.

The service contract of ROADMAP item 1: a second campaign overlapping a
warmed store must invoke ``run_scenario`` only for novel cells (counted
two independent ways — a monkeypatched ``run_scenario`` and the
``on_result`` replay flags), and every replayed cell must be
byte-identical to a cold simulation, on both store backends.  The
seeded end-to-end sweep (cold vs warm vs kill-and-resume, field by
field) lives in ``tests/diff_harness.py`` and is parametrized here.
"""

import dataclasses

import pytest

from repro.scheduler import (
    CampaignConfig,
    DirectoryResultStore,
    MemoryResultStore,
    Scenario,
    campaign_digest,
    run_campaign,
    scenario_key,
)
from repro.scheduler import campaign as campaign_module
from tests.diff_harness import assert_cache_equivalent

CONFIG = CampaignConfig(n_nodes=8, n_jobs=24, root_seed=5, load_factor=1.1)
CAP = 9e3

GRID_A = [
    Scenario(policy="fifo", seed_index=0),
    Scenario(policy="easy", cap_w=CAP, seed_index=0),
    Scenario(policy="power-aware", cap_w=CAP, seed_index=1),
]
# Overlaps A on two cells (one respelled), adds two novel ones.
GRID_B = [
    Scenario(policy="easy", cap_w=CAP, seed_index=0, label="respelled twin"),
    Scenario(policy="power-aware", cap_w=CAP, budget_w=CAP, seed_index=1),
    Scenario(policy="easy", seed_index=2),
    Scenario(policy="fifo", cap_w=CAP, seed_index=0),
]


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryResultStore()
    return DirectoryResultStore(tmp_path / "store")


@pytest.fixture
def count_runs(monkeypatch):
    """Count ``run_scenario`` invocations through the campaign runner."""
    calls = []
    real = campaign_module.run_scenario

    def counting(config, scenario, keep_result=False):
        calls.append(scenario)
        return real(config, scenario, keep_result=keep_result)

    monkeypatch.setattr(campaign_module, "run_scenario", counting)
    return calls


class TestHitAccounting:
    def test_second_overlapping_campaign_simulates_only_novel_cells(
            self, store, count_runs):
        run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        assert len(count_runs) == len(GRID_A)

        count_runs.clear()
        flags = []
        results = run_campaign(CONFIG, GRID_B, processes=1, cache=store,
                               on_result=lambda cell, replayed: flags.append(replayed))
        # Cells 0 and 1 of GRID_B are (respelled) members of GRID_A.
        assert len(count_runs) == 2
        assert [s.label for s in count_runs] == ["", ""]
        assert flags == [True, True, False, False]
        assert [r.scenario for r in results] == GRID_B

    def test_warm_rerun_simulates_nothing(self, store, count_runs):
        cold = run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        count_runs.clear()
        warm = run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        assert count_runs == []
        assert campaign_digest(warm) == campaign_digest(cold)
        for a, b in zip(cold, warm):
            assert a.digest == b.digest
            assert a.qos == b.qos
            assert a.scenario == b.scenario

    def test_warm_digests_byte_identical_to_cache_less_run(self, store):
        baseline = run_campaign(CONFIG, GRID_A, processes=1)
        run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        warm = run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        assert campaign_digest(warm) == campaign_digest(baseline)

    def test_within_grid_duplicates_simulate_once(self, store, count_runs):
        twin = dataclasses.replace(GRID_A[1], label="twin")
        results = run_campaign(CONFIG, GRID_A + [twin], processes=1, cache=store)
        assert len(count_runs) == len(GRID_A)
        assert results[-1].digest == results[1].digest
        assert results[-1].scenario == twin  # requested spelling preserved

    def test_without_cache_duplicates_still_simulate(self, count_runs):
        twin = dataclasses.replace(GRID_A[1], label="twin")
        run_campaign(CONFIG, GRID_A + [twin], processes=1)
        assert len(count_runs) == len(GRID_A) + 1

    def test_store_counts_hits_and_misses(self, store):
        run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        assert store.hits == 0
        assert store.misses == len(GRID_A)
        run_campaign(CONFIG, GRID_A, processes=1, cache=store)
        assert store.hits == len(GRID_A)

    def test_distinct_cores_key_separately(self, store, count_runs):
        """core is part of the key: pinning a different backend is a
        distinct computation (cores are digest-identical, but the cache
        never assumes a theorem it can re-derive per entry)."""
        array = Scenario(policy="easy", cap_w=CAP, core="array")
        calendar = Scenario(policy="easy", cap_w=CAP, core="calendar")
        assert scenario_key(CONFIG, array) != scenario_key(CONFIG, calendar)
        a = run_campaign(CONFIG, [array], processes=1, cache=store)
        b = run_campaign(CONFIG, [calendar], processes=1, cache=store)
        assert len(count_runs) == 2
        assert a[0].digest == b[0].digest  # ...and the theorem still holds


class TestKeepResultsInteraction:
    def test_metrics_only_hit_does_not_satisfy_keep_results(
            self, store, count_runs):
        run_campaign(CONFIG, GRID_A[:2], processes=1, cache=store)
        count_runs.clear()
        kept = run_campaign(CONFIG, GRID_A[:2], processes=1, cache=store,
                            keep_results=True)
        # Payload was never stored: both cells re-simulate and upgrade
        # the store in place...
        assert len(count_runs) == 2
        assert all(r.result is not None for r in kept)
        count_runs.clear()
        # ...after which payload-needing reruns are pure replays.
        again = run_campaign(CONFIG, GRID_A[:2], processes=1, cache=store,
                             keep_results=True)
        assert count_runs == []
        assert all(r.result is not None for r in again)
        assert campaign_digest(again) == campaign_digest(kept)

    def test_payload_hit_serves_metrics_only_request(self, store, count_runs):
        run_campaign(CONFIG, GRID_A[:2], processes=1, cache=store,
                     keep_results=True)
        count_runs.clear()
        bare = run_campaign(CONFIG, GRID_A[:2], processes=1, cache=store)
        assert count_runs == []
        # The replayed cells still carry the stored payload — harmless
        # extra data, never a missing one.
        assert all(r.digest for r in bare)


class TestPooledCache:
    def test_pooled_and_serial_cache_runs_agree(self, store):
        serial = run_campaign(CONFIG, GRID_B, processes=1, cache=store)
        pooled = run_campaign(CONFIG, GRID_B, processes=2)
        assert campaign_digest(serial) == campaign_digest(pooled)

    def test_pooled_warm_run_replays_everything(self, store):
        run_campaign(CONFIG, GRID_B, processes=2, cache=store)
        flags = []
        warm = run_campaign(CONFIG, GRID_B, processes=2, cache=store,
                            on_result=lambda cell, replayed: flags.append(replayed))
        assert flags == [True] * len(GRID_B)
        assert [r.scenario for r in warm] == GRID_B


class TestHarnessCacheMode:
    """The diff-harness cache sweep, pinned from pytest.

    CI additionally runs ``python tests/diff_harness.py --cache 50
    --bench-grids`` — 50 seeded grids plus the warm-rerun-0-cells check
    over the full E07b/E08a/E09a bench grids.
    """

    @pytest.mark.parametrize("seed", range(8))
    def test_cold_warm_resume_equivalence(self, seed):
        assert_cache_equivalent(seed)
