"""Tests for the online (RLS) job-power predictor."""

import numpy as np
import pytest

from repro.prediction import FeatureEncoder, OnlineJobPowerModel, OnlineRidge
from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    Job,
    JobRecord,
    WorkloadConfig,
    WorkloadGenerator,
)


class TestOnlineRidge:
    def test_learns_linear_relationship(self):
        rng = np.random.default_rng(0)
        rls = OnlineRidge(n_features=3, lam=1.0)
        w_true = np.array([2.0, -1.0, 0.5])
        for _ in range(300):
            x = rng.normal(size=3)
            rls.update(x, float(w_true @ x + 4.0 + rng.normal(0, 0.01)))
        x_test = rng.normal(size=3)
        assert rls.predict(x_test) == pytest.approx(float(w_true @ x_test + 4.0), abs=0.1)

    def test_error_shrinks_with_samples(self):
        rng = np.random.default_rng(1)
        rls = OnlineRidge(n_features=2, lam=1.0)
        w_true = np.array([1.5, -0.7])
        errors = []
        for _ in range(200):
            x = rng.normal(size=2)
            errors.append(abs(rls.update(x, float(w_true @ x))))
        assert np.mean(errors[-20:]) < np.mean(errors[:20]) / 10

    def test_forgetting_tracks_drift(self):
        rng = np.random.default_rng(2)
        adaptive = OnlineRidge(n_features=1, lam=0.95)
        frozen = OnlineRidge(n_features=1, lam=1.0)
        # Regime A for 200 samples, then the slope doubles.
        for _ in range(200):
            x = rng.normal(size=1)
            y = float(2.0 * x[0])
            adaptive.update(x, y)
            frozen.update(x, y)
        for _ in range(100):
            x = rng.normal(size=1)
            y = float(4.0 * x[0])
            adaptive.update(x, y)
            frozen.update(x, y)
        x_test = np.array([1.0])
        assert abs(adaptive.predict(x_test) - 4.0) < abs(frozen.predict(x_test) - 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            OnlineRidge(0)
        with pytest.raises(ValueError):
            OnlineRidge(2, lam=0.0)
        with pytest.raises(ValueError):
            OnlineRidge(2, delta=0.0)
        rls = OnlineRidge(2)
        with pytest.raises(ValueError):
            rls.update(np.zeros(3), 1.0)


class TestOnlineJobPowerModel:
    def finished_records(self, jobs):
        """Run the jobs so each record carries measured energy."""
        result = ClusterSimulator(45, EasyBackfillScheduler()).run(jobs)
        return list(result.records)

    def test_prior_before_enough_samples(self):
        jobs = WorkloadGenerator(WorkloadConfig(n_jobs=30), rng=np.random.default_rng(0)).generate()
        enc = FeatureEncoder().fit(jobs)
        model = OnlineJobPowerModel(enc, min_samples=10)
        assert model.predict_per_node(jobs[0]) == 1800.0
        assert model(jobs[0]) == 1800.0 * jobs[0].n_nodes

    def test_accuracy_improves_over_the_stream(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=400), rng=np.random.default_rng(3)
        ).generate()
        enc = FeatureEncoder().fit(jobs)
        model = OnlineJobPowerModel(enc, min_samples=10)
        records = self.finished_records(jobs)
        records.sort(key=lambda r: r.end_time_s)
        errors = []
        for rec in records:
            # Predict before observing (prequential evaluation).
            pred = model.predict_per_node(rec.job)
            errors.append(abs(pred - rec.job.true_power_per_node_w) / rec.job.true_power_per_node_w)
            model.observe(rec)
        early = np.mean(errors[10:60])
        late = np.mean(errors[-50:])
        assert late < early
        assert late < 0.10  # converges into the cited accuracy band

    def test_observe_requires_finished_record(self):
        jobs = WorkloadGenerator(WorkloadConfig(n_jobs=20), rng=np.random.default_rng(4)).generate()
        enc = FeatureEncoder().fit(jobs)
        model = OnlineJobPowerModel(enc)
        with pytest.raises(ValueError):
            model.observe(JobRecord(job=jobs[0]))

    def test_plugs_into_simulator_hooks(self):
        jobs = WorkloadGenerator(
            WorkloadConfig(n_jobs=120), rng=np.random.default_rng(5)
        ).generate()
        enc = FeatureEncoder().fit(jobs)
        model = OnlineJobPowerModel(enc)
        sim = ClusterSimulator(45, EasyBackfillScheduler(), on_job_end=model.observe)
        sim.run(jobs)
        assert model.rls.samples_seen == 120
        # A trained prediction lands in the physical band.
        assert 300.0 <= model.predict_per_node(jobs[0]) <= 2200.0

    def test_validation(self):
        jobs = WorkloadGenerator(WorkloadConfig(n_jobs=20), rng=np.random.default_rng(6)).generate()
        enc = FeatureEncoder().fit(jobs)
        with pytest.raises(ValueError):
            OnlineJobPowerModel(enc, prior_per_node_w=0.0)
        with pytest.raises(ValueError):
            OnlineJobPowerModel(enc, min_samples=0)
