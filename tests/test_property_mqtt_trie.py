"""Property-based tests: the broker's topic trie vs the reference matcher.

The trie is an optimisation; `topic_matches` is the specification.  For
random topic/filter populations, a publish must reach exactly the
subscriptions whose filter matches per the reference predicate.

Two flavours live here: hypothesis-driven strategies, and pure-stdlib
seeded trials (``random.Random``) that need no third-party shrinker and
replay byte-for-byte from their seeds — the same reproducibility
contract as the fault-injection subsystem.
"""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.monitoring import MqttBroker, topic_matches
from repro.power import (
    PowerTrace,
    boxcar_decimate,
    cascaded_average,
    effective_bits_gain,
    naive_decimate,
)

level = st.sampled_from(["a", "b", "c", "node1", "power", "x9"])
wild_level = st.one_of(level, st.just("+"))

topics = st.lists(level, min_size=1, max_size=5).map("/".join)


@st.composite
def filters(draw):
    levels = draw(st.lists(wild_level, min_size=1, max_size=5))
    if draw(st.booleans()):
        levels.append("#")
    return "/".join(levels)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(filters(), min_size=1, max_size=8),
    st.lists(topics, min_size=1, max_size=8),
)
def test_trie_delivery_matches_reference(filter_list, topic_list):
    broker = MqttBroker()
    clients = []
    for i, filt in enumerate(filter_list):
        c = broker.connect(f"c{i}")
        c.subscribe(filt)
        clients.append((c, filt))
    for topic in topic_list:
        broker.publish(topic, topic)
    for client, filt in clients:
        received = [m.payload for m in client.drain()]
        expected = [t for t in topic_list if topic_matches(filt, t)]
        assert received == expected, f"filter {filt!r}"


@settings(max_examples=100, deadline=None)
@given(filters(), topics)
def test_hash_filter_superset_of_exact(filt, topic):
    # Replacing the last level of a filter with '#' can only widen it.
    widened = "/".join(filt.split("/")[:-1] + ["#"]) if "/" in filt else "#"
    if topic_matches(filt, topic):
        assert topic_matches(widened, topic)


@settings(max_examples=100, deadline=None)
@given(topics)
def test_every_topic_matched_by_root_hash(topic):
    assert topic_matches("#", topic)


# -- pure-stdlib seeded trials -------------------------------------------------

LEVELS = ["a", "b", "c", "node1", "node12", "power", "cpu", "x9"]


def _random_topic(rng: random.Random) -> str:
    return "/".join(rng.choice(LEVELS) for _ in range(rng.randint(1, 5)))


def _random_filter(rng: random.Random) -> str:
    parts = [rng.choice(LEVELS + ["+"]) for _ in range(rng.randint(1, 5))]
    if rng.random() < 0.4:
        parts.append("#")
    return "/".join(parts)


class TestTrieStdlibTrials:
    def test_trie_vs_reference_seeded_trials(self):
        rng = random.Random(0xDA71DE)
        for _ in range(60):
            filters_ = [_random_filter(rng) for _ in range(rng.randint(1, 10))]
            topics_ = [_random_topic(rng) for _ in range(rng.randint(1, 10))]
            broker = MqttBroker()
            clients = []
            for i, filt in enumerate(filters_):
                c = broker.connect(f"c{i}")
                c.subscribe(filt)
                clients.append((c, filt))
            for topic in topics_:
                broker.publish(topic, topic)
            for client, filt in clients:
                received = [m.payload for m in client.drain()]
                expected = [t for t in topics_ if topic_matches(filt, t)]
                assert received == expected, f"filter {filt!r} topics {topics_!r}"

    def test_plus_is_exactly_one_level(self):
        rng = random.Random(7)
        for _ in range(200):
            topic = _random_topic(rng)
            n = len(topic.split("/"))
            # A filter of n '+' levels matches; n-1 or n+1 must not.
            assert topic_matches("/".join(["+"] * n), topic)
            assert not topic_matches("/".join(["+"] * (n + 1)), topic)
            if n > 1:
                assert not topic_matches("/".join(["+"] * (n - 1)), topic)

    def test_adversarial_filters_never_crash_matching(self):
        # Deep wildcard stacks and repeated levels: the trie must stay
        # consistent with the reference on pathological shapes.
        broker = MqttBroker()
        weird = ["+/+/+/+/+/#", "a/a/a/a/a", "+/a/+/a/#", "#"]
        clients = []
        for i, filt in enumerate(weird):
            c = broker.connect(f"w{i}")
            c.subscribe(filt)
            clients.append((c, filt))
        topic = "a/a/a/a/a"
        broker.publish(topic, 1)
        for client, filt in clients:
            got = len(client.drain())
            assert got == (1 if topic_matches(filt, topic) else 0), filt


def _random_trace(rng: random.Random, n: int) -> PowerTrace:
    times = np.arange(n, dtype=float) * 1e-3
    power = np.array([rng.uniform(0.0, 2000.0) for _ in range(n)])
    return PowerTrace(times, power)


class TestDecimationChainTrials:
    def test_cascade_equals_single_boxcar(self):
        # x4 then x4 in the gateway firmware == one x16 block average.
        rng = random.Random(1234)
        for _ in range(40):
            f1, f2 = rng.randint(2, 5), rng.randint(2, 5)
            n = f1 * f2 * rng.randint(1, 6) + rng.randint(0, f1 * f2 - 1)
            if n < f1 * f2:
                n = f1 * f2
            trace = _random_trace(rng, n)
            staged = cascaded_average(trace, [f1, f2])
            single = boxcar_decimate(trace, f1 * f2)
            np.testing.assert_allclose(staged.power_w, single.power_w, rtol=1e-12)
            np.testing.assert_allclose(staged.times_s, single.times_s, rtol=1e-12)

    def test_boxcar_preserves_block_means(self):
        rng = random.Random(99)
        for _ in range(40):
            factor = rng.randint(2, 8)
            n = factor * rng.randint(2, 20)
            trace = _random_trace(rng, n)
            out = boxcar_decimate(trace, factor)
            assert len(out) == n // factor
            # Total mean is exactly preserved when blocks tile the trace.
            assert float(np.mean(out.power_w)) == pytest.approx(
                float(np.mean(trace.power_w)), rel=1e-12)

    def test_boxcar_output_within_input_range(self):
        rng = random.Random(5)
        for _ in range(40):
            trace = _random_trace(rng, rng.randint(8, 200))
            out = boxcar_decimate(trace, rng.randint(2, 6))
            assert out.power_w.min() >= trace.power_w.min() - 1e-9
            assert out.power_w.max() <= trace.power_w.max() + 1e-9

    def test_naive_keeps_exact_samples_boxcar_smooths(self):
        rng = random.Random(17)
        for _ in range(20):
            factor = rng.randint(2, 6)
            n = factor * rng.randint(3, 15)
            trace = _random_trace(rng, n)
            naive = naive_decimate(trace, factor)
            np.testing.assert_array_equal(naive.power_w, trace.power_w[::factor])
            # On a constant trace the two agree exactly.
            flat = PowerTrace(trace.times_s, np.full(n, 123.0))
            np.testing.assert_allclose(boxcar_decimate(flat, factor).power_w,
                                       naive_decimate(flat, factor).power_w)

    def test_noise_reduction_matches_effective_bits(self):
        # Averaging N white-noise samples shrinks sigma by sqrt(N): the
        # "2 extra bits at x16" claim, checked statistically.
        rng = np.random.default_rng(12)
        n, factor = 16000, 16
        noise = rng.normal(0.0, 10.0, n)
        trace = PowerTrace(np.arange(n) * 1e-3, 1000.0 + noise)
        out = boxcar_decimate(trace, factor)
        ratio = np.std(trace.power_w) / np.std(out.power_w)
        assert ratio == pytest.approx(np.sqrt(factor), rel=0.15)
        assert effective_bits_gain(factor) == pytest.approx(2.0)

