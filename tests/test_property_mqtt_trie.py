"""Property-based tests: the broker's topic trie vs the reference matcher.

The trie is an optimisation; `topic_matches` is the specification.  For
random topic/filter populations, a publish must reach exactly the
subscriptions whose filter matches per the reference predicate.
"""

from hypothesis import given, settings, strategies as st

from repro.monitoring import MqttBroker, topic_matches

level = st.sampled_from(["a", "b", "c", "node1", "power", "x9"])
wild_level = st.one_of(level, st.just("+"))

topics = st.lists(level, min_size=1, max_size=5).map("/".join)


@st.composite
def filters(draw):
    levels = draw(st.lists(wild_level, min_size=1, max_size=5))
    if draw(st.booleans()):
        levels.append("#")
    return "/".join(levels)


@settings(max_examples=200, deadline=None)
@given(
    st.lists(filters(), min_size=1, max_size=8),
    st.lists(topics, min_size=1, max_size=8),
)
def test_trie_delivery_matches_reference(filter_list, topic_list):
    broker = MqttBroker()
    clients = []
    for i, filt in enumerate(filter_list):
        c = broker.connect(f"c{i}")
        c.subscribe(filt)
        clients.append((c, filt))
    for topic in topic_list:
        broker.publish(topic, topic)
    for client, filt in clients:
        received = [m.payload for m in client.drain()]
        expected = [t for t in topic_list if topic_matches(filt, t)]
        assert received == expected, f"filter {filt!r}"


@settings(max_examples=100, deadline=None)
@given(filters(), topics)
def test_hash_filter_superset_of_exact(filt, topic):
    # Replacing the last level of a filter with '#' can only widen it.
    widened = "/".join(filt.split("/")[:-1] + ["#"]) if "/" in filt else "#"
    if topic_matches(filt, topic):
        assert topic_matches(widened, topic)


@settings(max_examples=100, deadline=None)
@given(topics)
def test_every_topic_matched_by_root_hash(topic):
    assert topic_matches("#", topic)
