"""Property-based invariants of the cluster scheduling simulator.

For randomized workloads and policies, the simulation must uphold the
physical/bookkeeping invariants regardless of parameters: every job
completes exactly once, no node is double-allocated, causality holds,
and the energy ledger balances.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    FifoScheduler,
    JobState,
    PowerAwareScheduler,
    WorkloadConfig,
    WorkloadGenerator,
)

POLICIES = {
    "fifo": lambda: FifoScheduler(),
    "easy": lambda: EasyBackfillScheduler(),
    "power": lambda: PowerAwareScheduler(55e3, predictor=lambda j: j.true_power_w),
}


def run_one(seed: int, policy_name: str, load: float, cap: float | None):
    jobs = WorkloadGenerator(
        WorkloadConfig(n_jobs=40, cluster_nodes=45, load_factor=load),
        rng=np.random.default_rng(seed),
    ).generate()
    sim = ClusterSimulator(45, POLICIES[policy_name](), reactive_cap_w=cap)
    return jobs, sim.run(jobs)


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=0, max_value=10_000),
    st.sampled_from(sorted(POLICIES)),
    st.floats(min_value=0.5, max_value=1.4),
    st.one_of(st.none(), st.floats(min_value=40e3, max_value=80e3)),
)
def test_simulation_invariants(seed, policy_name, load, cap):
    jobs, result = run_one(seed, policy_name, load, cap)

    # 1. Every job completed exactly once, after its submission.
    assert len(result.records) == len(jobs)
    for rec in result.records:
        assert rec.state is JobState.COMPLETED
        assert rec.start_time_s >= rec.job.submit_time_s - 1e-9
        assert rec.end_time_s > rec.start_time_s
        # Runtime never shrinks below the true runtime (caps only stretch).
        assert rec.actual_runtime_s >= rec.job.true_runtime_s - 1e-6
        assert len(rec.nodes) == rec.job.n_nodes

    # 2. No node serves two jobs at once.
    by_node: dict[int, list[tuple[float, float]]] = {}
    for rec in result.records:
        for node in rec.nodes:
            by_node.setdefault(node, []).append((rec.start_time_s, rec.end_time_s))
    for intervals in by_node.values():
        intervals.sort()
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert s2 >= e1 - 1e-9, "node double-allocated"

    # 3. The energy ledger balances: total energy equals the trace
    #    integral (step convention) and covers the per-job energies.
    t, p = result.power_trace.times_s, result.power_trace.power_w
    step_energy = float(np.sum(np.diff(t) * p[:-1]))
    assert step_energy == pytest.approx(result.total_energy_j, rel=1e-6)
    job_energy = sum(rec.energy_j for rec in result.records)
    assert job_energy <= result.total_energy_j + 1e-6

    # 4. Utilization and makespan are consistent.
    assert 0.0 < result.utilization <= 1.0
    assert result.makespan_s >= max(j.submit_time_s for j in jobs)

    # 5. The reactive cap, when present, is never exceeded post-trim
    #    (modulo the uncontrollable floor).
    if cap is not None:
        floor = 45 * 300.0
        assert result.peak_power_w() <= max(cap, floor) * 1.001
