"""Edge-case coverage for corners the main suites don't reach."""

import numpy as np
import pytest

from repro.hardware import ComputeNode, GpuModel, MemorySubsystem
from repro.power import PowerTrace
from repro.sim import Environment, SimulationError


class TestSimEngineEdges:
    def test_all_of_fails_if_any_constituent_fails(self):
        env = Environment()

        def failing_child():
            yield env.timeout(1.0)
            raise ValueError("child boom")

        def parent():
            ok = env.timeout(5.0)
            bad = env.process(failing_child())
            try:
                yield env.all_of([ok, bad])
            except ValueError as e:
                return f"caught: {e}"

        p = env.process(parent())
        assert env.run(until=p) == "caught: child boom"

    def test_timeout_carries_value(self):
        env = Environment()
        t = env.timeout(2.0, value={"k": 1})
        assert env.run(until=t) == {"k": 1}

    def test_interrupt_cause_none_by_default(self):
        env = Environment()

        def victim():
            try:
                yield env.timeout(10.0)
            except BaseException as e:
                return e.cause

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(until=v) is None


class TestTraceEdges:
    def test_resample_short_trace_identity(self):
        tr = PowerTrace(np.array([0.0]), np.array([5.0]))
        assert tr.resample(10.0) is tr

    def test_single_sample_mean_power(self):
        tr = PowerTrace(np.array([1.0]), np.array([42.0]))
        assert tr.mean_power_w() == 42.0

    def test_add_type_mismatch(self):
        tr = PowerTrace(np.array([0.0, 1.0]), np.array([1.0, 2.0]))
        with pytest.raises(TypeError):
            _ = tr + 5


class TestHardwareEdges:
    def test_stream_time_infinite_on_zero_bandwidth_mix(self):
        mem = MemorySubsystem()
        # A valid mix always has bandwidth; zero bytes is free.
        assert mem.stream_time_s(0.0) == 0.0
        with pytest.raises(ValueError):
            mem.stream_time_s(-1.0)

    def test_gpu_kernel_time_validation(self):
        gpu = GpuModel()
        with pytest.raises(ValueError):
            gpu.kernel_time_s(-1.0, 1.0)
        with pytest.raises(ValueError):
            gpu.attainable_flops(-1.0)
        # A sleeping GPU computes nothing: infinite kernel time.
        gpu.sleep()
        assert gpu.kernel_time_s(1e9, 10.0) == float("inf")

    def test_node_repr_smoke(self):
        assert "ComputeNode" in repr(ComputeNode())

    def test_cpu_energy_validation(self):
        node = ComputeNode()
        with pytest.raises(ValueError):
            node.cpus[0].energy_j(0.5, -1.0)
        assert node.cpus[0].energy_j(0.5, 2.0) > 0
