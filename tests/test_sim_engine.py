"""Tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    KernelHooks,
    SimulationError,
    Timeout,
)


class TestEnvironmentBasics:
    def test_initial_time(self):
        assert Environment().now == 0.0
        assert Environment(initial_time=5.0).now == 5.0

    def test_timeout_advances_clock(self):
        env = Environment()
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5

    def test_run_until_time_stops_clock_exactly(self):
        env = Environment()
        env.timeout(10.0)
        env.run(until=4.0)
        assert env.now == 4.0

    def test_run_until_past_raises(self):
        env = Environment(initial_time=10.0)
        with pytest.raises(ValueError):
            env.run(until=5.0)

    def test_negative_timeout_rejected(self):
        env = Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_peek_empty_queue(self):
        assert Environment().peek() == float("inf")

    def test_step_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            Environment().step()

    def test_same_time_events_fifo_order(self):
        env = Environment()
        order = []

        def proc(tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_succeed_carries_value(self):
        env = Environment()
        evt = env.event()
        evt.succeed(42)
        env.run()
        assert evt.processed and evt.ok and evt.value == 42

    def test_double_trigger_raises(self):
        env = Environment()
        evt = env.event()
        evt.succeed()
        with pytest.raises(SimulationError):
            evt.succeed()

    def test_fail_requires_exception(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_unhandled_failure_propagates(self):
        env = Environment()
        env.event().fail(RuntimeError("boom"))
        with pytest.raises(RuntimeError, match="boom"):
            env.run()

    def test_defused_failure_does_not_propagate(self):
        env = Environment()
        evt = env.event()
        evt.fail(RuntimeError("boom"))
        evt.defused()
        env.run()  # must not raise


class TestProcesses:
    def test_process_return_value(self):
        env = Environment()

        def proc():
            yield env.timeout(1.0)
            return "done"

        p = env.process(proc())
        assert env.run(until=p) == "done"

    def test_sequential_timeouts_accumulate(self):
        env = Environment()
        times = []

        def proc():
            for d in (1.0, 2.0, 3.0):
                yield env.timeout(d)
                times.append(env.now)

        env.process(proc())
        env.run()
        assert times == [1.0, 3.0, 6.0]

    def test_yield_non_event_fails_process(self):
        env = Environment()

        def proc():
            yield 17  # not an Event

        p = env.process(proc())
        with pytest.raises(SimulationError):
            env.run(until=p)

    def test_process_waits_on_another_process(self):
        env = Environment()

        def child():
            yield env.timeout(5.0)
            return "child-result"

        def parent():
            result = yield env.process(child())
            return (env.now, result)

        p = env.process(parent())
        assert env.run(until=p) == (5.0, "child-result")

    def test_exception_in_process_propagates_to_waiter(self):
        env = Environment()

        def child():
            yield env.timeout(1.0)
            raise ValueError("child failed")

        def parent():
            try:
                yield env.process(child())
            except ValueError as e:
                return f"caught: {e}"

        p = env.process(parent())
        assert env.run(until=p) == "caught: child failed"

    def test_requires_generator(self):
        env = Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)

    def test_yield_already_processed_event(self):
        env = Environment()
        evt = env.event()
        evt.succeed("early")
        env.run()

        def proc():
            value = yield evt
            return value

        p = env.process(proc())
        assert env.run(until=p) == "early"


class TestInterrupts:
    def test_interrupt_delivers_cause(self):
        env = Environment()

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        def attacker(target):
            yield env.timeout(2.0)
            target.interrupt(cause="power-cap")

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(until=v) == ("interrupted", "power-cap", 2.0)

    def test_interrupt_finished_process_raises(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_resumes_after_handling_interrupt(self):
        env = Environment()

        def victim():
            try:
                yield env.timeout(100.0)
            except Interrupt:
                pass
            yield env.timeout(3.0)
            return env.now

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt()

        v = env.process(victim())
        env.process(attacker(v))
        assert env.run(until=v) == 4.0


class TestConditions:
    def test_all_of_waits_for_slowest(self):
        env = Environment()

        def proc():
            t1, t2 = env.timeout(1.0, "a"), env.timeout(5.0, "b")
            result = yield env.all_of([t1, t2])
            return (env.now, sorted(result.values()))

        p = env.process(proc())
        assert env.run(until=p) == (5.0, ["a", "b"])

    def test_any_of_fires_on_first(self):
        env = Environment()

        def proc():
            t1, t2 = env.timeout(1.0, "fast"), env.timeout(5.0, "slow")
            result = yield env.any_of([t1, t2])
            return (env.now, list(result.values()))

        p = env.process(proc())
        assert env.run(until=p) == (1.0, ["fast"])

    def test_all_of_empty_fires_immediately(self):
        env = Environment()
        evt = env.all_of([])
        env.run()
        assert evt.processed and evt.value == {}

    def test_any_of_empty_raises(self):
        env = Environment()
        with pytest.raises(SimulationError):
            env.any_of([])

    def test_all_of_mixed_environments_rejected(self):
        env1, env2 = Environment(), Environment()
        t = env2.timeout(1.0)
        with pytest.raises(SimulationError):
            env1.all_of([t])


class TestRunSemantics:
    def test_run_until_event_returns_value(self):
        env = Environment()
        evt = env.timeout(2.5, value="payload")
        assert env.run(until=evt) == "payload"
        assert env.now == 2.5

    def test_run_until_never_fired_event_raises(self):
        env = Environment()
        evt = env.event()  # never triggered
        env.timeout(1.0)
        with pytest.raises(SimulationError):
            env.run(until=evt)

    def test_run_until_time_with_no_events_advances_clock(self):
        env = Environment()
        env.run(until=7.0)
        assert env.now == 7.0


class TestKernelHooks:
    def test_schedule_and_dispatch_hooks_fire_for_every_event(self):
        scheduled, dispatched = [], []
        hooks = KernelHooks(
            on_schedule=lambda ev, at: scheduled.append(at),
            on_dispatch=lambda ev, now: dispatched.append(now),
        )
        env = Environment(hooks=hooks)

        def proc():
            yield env.timeout(1.0)
            yield env.timeout(2.0)

        env.process(proc())
        env.run()
        # Every dispatched event was scheduled first.
        assert len(scheduled) >= len(dispatched) > 0
        # Dispatch times are the kernel clock: non-decreasing.
        assert dispatched == sorted(dispatched)
        assert dispatched[-1] == 3.0

    def test_on_error_hook_sees_unhandled_failure(self):
        errors = []
        env = Environment(hooks=KernelHooks(on_error=lambda exc, ev, now: errors.append((type(exc), now))))
        evt = env.event()
        evt.fail(ValueError("boom"))
        with pytest.raises(ValueError):
            env.run()
        assert errors == [(ValueError, 0.0)]

    def test_attach_hooks_after_construction(self):
        env = Environment()
        seen = []
        env.attach_hooks(KernelHooks(on_dispatch=lambda ev, now: seen.append(now)))
        env.timeout(4.0)
        env.run()
        assert seen == [4.0]

    def test_hookless_behaviour_unchanged(self):
        def proc(env):
            a = yield env.timeout(1.0, "a")
            b = yield env.timeout(2.0, "b")
            return (a, b, env.now)

        bare = Environment()
        hooked = Environment(hooks=KernelHooks())
        p1 = bare.process(proc(bare))
        p2 = hooked.process(proc(hooked))
        assert bare.run(until=p1) == hooked.run(until=p2) == ("a", "b", 3.0)


class TestInterruptAfterCompletion:
    def test_double_interrupt_surfaces_clear_error(self):
        """A second Interrupt delivered after the victim already finished
        must raise a SimulationError naming the completed process, not a
        confusing double-trigger / generator error."""
        env = Environment()

        def victim():
            try:
                yield env.timeout(10.0)
            except Interrupt:
                return "handled"  # finishes on the first interrupt

        def attacker(target):
            yield env.timeout(1.0)
            target.interrupt("first")
            target.interrupt("second")  # victim will be done when this lands

        v = env.process(victim(), name="victim")
        env.process(attacker(v))
        with pytest.raises(SimulationError, match="already-completed process 'victim'"):
            env.run()

    def test_interrupt_finished_process_still_rejected_at_call_time(self):
        env = Environment()

        def quick():
            yield env.timeout(1.0)

        p = env.process(quick())
        env.run()
        with pytest.raises(SimulationError, match="cannot interrupt finished"):
            p.interrupt()
