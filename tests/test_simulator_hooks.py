"""Tests for the simulator's lifecycle hooks and their plugin integration."""

import numpy as np
import pytest

from repro.monitoring import MqttBroker
from repro.scheduler import (
    ClusterSimulator,
    EasyBackfillScheduler,
    SchedulerMonitorPlugin,
    WorkloadConfig,
    WorkloadGenerator,
)


def workload(n=20, seed=0):
    return WorkloadGenerator(
        WorkloadConfig(n_jobs=n, cluster_nodes=8, load_factor=1.0),
        rng=np.random.default_rng(seed),
    ).generate()


class TestLifecycleHooks:
    def test_hooks_fire_once_per_job_in_order(self):
        events = []
        sim = ClusterSimulator(
            8,
            EasyBackfillScheduler(),
            on_job_start=lambda rec: events.append(("start", rec.job.job_id, rec.start_time_s)),
            on_job_end=lambda rec: events.append(("end", rec.job.job_id, rec.end_time_s)),
        )
        jobs = workload(20)
        sim.run(jobs)
        starts = [e for e in events if e[0] == "start"]
        ends = [e for e in events if e[0] == "end"]
        assert len(starts) == len(ends) == 20
        # Each job's start precedes its end.
        start_by_id = {jid: t for _, jid, t in starts}
        for _, jid, t_end in ends:
            assert t_end > start_by_id[jid]
        # Events arrive in non-decreasing simulated time.
        times = [e[2] for e in events]
        # starts/ends interleave; within each stream time is monotone.
        assert [t for k, _, t in events if k == "start"] == sorted(start_by_id.values())

    def test_plugin_rides_the_hooks_end_to_end(self):
        broker = MqttBroker()
        plugin = SchedulerMonitorPlugin(broker)
        summaries = []
        sim = ClusterSimulator(
            8,
            EasyBackfillScheduler(),
            on_job_start=plugin.job_started,
            on_job_end=lambda rec: summaries.append(plugin.job_ended(rec)),
        )
        jobs = workload(15, seed=1)
        sim.run(jobs)
        assert len(summaries) == 15
        # Lifecycle events landed on the bus, retained for late agents.
        agent = broker.connect("late")
        agent.subscribe("davide/jobs/+/end")
        assert len(agent.drain()) == 15

    def test_hookless_runs_unchanged(self):
        jobs = workload(15, seed=2)
        with_hooks = ClusterSimulator(
            8, EasyBackfillScheduler(), on_job_start=lambda r: None, on_job_end=lambda r: None
        ).run(jobs)
        without = ClusterSimulator(8, EasyBackfillScheduler()).run(jobs)
        assert with_hooks.makespan_s == pytest.approx(without.makespan_s)
        assert with_hooks.total_energy_j == pytest.approx(without.total_energy_j)
