"""Tests for Resource / Container / Store primitives."""

import pytest

from repro.sim import Container, Environment, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)

    def test_grant_within_capacity_is_immediate(self):
        env = Environment()
        res = Resource(env, capacity=2)
        log = []

        def proc(tag):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(1.0)

        env.process(proc("a"))
        env.process(proc("b"))
        env.run()
        assert log == [("a", 0.0), ("b", 0.0)]

    def test_fifo_queuing_when_full(self):
        env = Environment()
        res = Resource(env, capacity=1)
        log = []

        def proc(tag, hold):
            with res.request() as req:
                yield req
                log.append((tag, env.now))
                yield env.timeout(hold)

        env.process(proc("first", 2.0))
        env.process(proc("second", 1.0))
        env.process(proc("third", 1.0))
        env.run()
        assert log == [("first", 0.0), ("second", 2.0), ("third", 3.0)]

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder():
            with res.request() as req:
                yield req
                yield env.timeout(10.0)

        def waiter():
            with res.request() as req:
                yield req

        env.process(holder())
        env.process(waiter())
        env.run(until=1.0)
        assert res.count == 1
        assert res.queue_length == 1

    def test_double_release_is_noop(self):
        env = Environment()
        res = Resource(env, capacity=1)
        req = res.request()
        env.run()
        req.release()
        req.release()  # must not raise
        assert res.count == 0

    def test_cancel_queued_request(self):
        env = Environment()
        res = Resource(env, capacity=1)
        held = res.request()
        env.run()
        queued = res.request()
        queued.release()  # cancel before grant
        held.release()
        env.run()
        assert res.count == 0 and res.queue_length == 0


class TestContainer:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, capacity=0)
        with pytest.raises(ValueError):
            Container(env, capacity=10, init=11)

    def test_get_blocks_until_level_sufficient(self):
        env = Environment()
        tank = Container(env, capacity=100, init=0)
        times = []

        def consumer():
            yield tank.get(30)
            times.append(env.now)

        def producer():
            yield env.timeout(5.0)
            yield tank.put(50)

        env.process(consumer())
        env.process(producer())
        env.run()
        assert times == [5.0]
        assert tank.level == 20

    def test_put_blocks_at_capacity(self):
        env = Environment()
        tank = Container(env, capacity=10, init=10)
        times = []

        def producer():
            yield tank.put(5)
            times.append(env.now)

        def consumer():
            yield env.timeout(3.0)
            yield tank.get(6)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert times == [3.0]
        assert tank.level == 9

    def test_negative_amounts_rejected(self):
        env = Environment()
        tank = Container(env, capacity=10)
        with pytest.raises(ValueError):
            tank.put(-1)
        with pytest.raises(ValueError):
            tank.get(-1)


class TestStore:
    def test_fifo_item_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer():
            for item in ("x", "y", "z"):
                yield store.put(item)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer())
        env.process(consumer())
        env.run()
        assert got == ["x", "y", "z"]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        log = []

        def consumer():
            item = yield store.get()
            log.append((item, env.now))

        def producer():
            yield env.timeout(4.0)
            yield store.put("late")

        env.process(consumer())
        env.process(producer())
        env.run()
        assert log == [("late", 4.0)]

    def test_capacity_blocks_put(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer():
            yield store.put(1)
            yield store.put(2)
            log.append(env.now)

        def consumer():
            yield env.timeout(2.0)
            yield store.get()

        env.process(producer())
        env.process(consumer())
        env.run()
        assert log == [2.0]

    def test_items_snapshot(self):
        env = Environment()
        store = Store(env)
        store.put("a")
        store.put("b")
        env.run()
        assert store.items == ("a", "b")
