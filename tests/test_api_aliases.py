"""Keyword normalization: canonical ``period_s``/``cap_w``/``seed``
spellings, with the old names kept one release behind DeprecationWarning."""

import warnings

import numpy as np
import pytest

from repro.capping import NodePowerCapper
from repro.hardware import ComputeNode
from repro.monitoring import CappingAgent, GatewayArray, GatewayDaemon, MqttBroker
from repro.scheduler import ClusterSimulator, FifoScheduler, PowerAwareScheduler
from repro.sim import Environment
from repro.timesync import LocalClock, NtpClient, PtpSlave


def _env_node_broker():
    env = Environment()
    broker = MqttBroker(clock=lambda: env.now)
    return env, ComputeNode(node_id=0), broker


class TestGatewayAliases:
    def test_daemon_interval_s_warns(self):
        env, node, broker = _env_node_broker()
        with pytest.warns(DeprecationWarning, match="interval_s.*deprecated.*period_s"):
            daemon = GatewayDaemon(env, node, broker, interval_s=0.25)
        assert daemon.period_s == 0.25

    def test_daemon_rng_seed_warns(self):
        env, node, broker = _env_node_broker()
        with pytest.warns(DeprecationWarning, match="rng_seed.*deprecated.*seed"):
            daemon = GatewayDaemon(env, node, broker, rng_seed=7)
        reference = np.random.default_rng(7)
        assert daemon.rng.normal() == reference.normal()

    def test_daemon_both_spellings_is_an_error(self):
        env, node, broker = _env_node_broker()
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                GatewayDaemon(env, node, broker, period_s=0.1, interval_s=0.2)

    def test_array_interval_s_warns(self):
        env, node, broker = _env_node_broker()
        with pytest.warns(DeprecationWarning, match="interval_s"):
            array = GatewayArray(env, [node], broker, interval_s=0.25)
        assert array.period_s == 0.25

    def test_canonical_spelling_is_silent(self):
        env, node, broker = _env_node_broker()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            GatewayDaemon(env, node, broker, period_s=0.1, seed=3)
            GatewayArray(env, [node], broker, period_s=0.1)


class TestCappingAliases:
    def test_agent_setpoint_w_warns(self):
        env, node, broker = _env_node_broker()
        with pytest.warns(DeprecationWarning, match="setpoint_w.*deprecated.*cap_w"):
            agent = CappingAgent(env, node, broker, setpoint_w=1_500.0)
        assert agent.cap_w == 1_500.0
        assert agent.setpoint_w == 1_500.0  # property read stays silent

    def test_capper_setpoint_and_control_period_warn(self):
        node = ComputeNode(node_id=0)
        with pytest.warns(DeprecationWarning, match="setpoint_w"):
            with pytest.warns(DeprecationWarning, match="control_period_s"):
                capper = NodePowerCapper(node, setpoint_w=1_200.0, control_period_s=0.2)
        assert capper.cap_w == 1_200.0 and capper.period_s == 0.2
        assert capper.setpoint_w == 1_200.0
        assert capper.control_period_s == 0.2

    def test_capper_requires_cap(self):
        with pytest.raises(TypeError, match="cap_w"):
            NodePowerCapper(ComputeNode(node_id=0))


class TestSchedulerAliases:
    def test_simulator_reactive_cap_w_warns(self):
        with pytest.warns(DeprecationWarning, match="reactive_cap_w.*deprecated.*cap_w"):
            sim = ClusterSimulator(4, FifoScheduler(), reactive_cap_w=5_000.0)
        assert sim.cap_w == 5_000.0
        assert sim.reactive_cap_w == 5_000.0

    def test_power_aware_power_budget_w_warns(self):
        with pytest.warns(DeprecationWarning, match="power_budget_w.*deprecated.*cap_w"):
            sched = PowerAwareScheduler(power_budget_w=40_000.0)
        assert sched.cap_w == 40_000.0
        assert sched.power_budget_w == 40_000.0

    def test_power_aware_budget_property_setter(self):
        sched = PowerAwareScheduler(cap_w=40_000.0)
        sched.power_budget_w = 35_000.0
        assert sched.cap_w == 35_000.0


class TestTimesyncAliases:
    def test_ntp_poll_interval_s_warns(self):
        with pytest.warns(DeprecationWarning, match="poll_interval_s.*deprecated.*period_s"):
            ntp = NtpClient(LocalClock(), poll_interval_s=32.0)
        assert ntp.period_s == 32.0
        assert ntp.poll_interval_s == 32.0

    def test_ptp_sync_interval_s_warns(self):
        with pytest.warns(DeprecationWarning, match="sync_interval_s.*deprecated.*period_s"):
            ptp = PtpSlave(LocalClock(), sync_interval_s=2.0)
        assert ptp.period_s == 2.0
        assert ptp.sync_interval_s == 2.0

    def test_unknown_kwarg_still_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            NtpClient(LocalClock(), pol_interval_s=32.0)


class TestExploreAliases:
    """``explore()`` keeps the legacy ``n_steps``/``rng_seed`` spellings
    one release behind a DeprecationWarning, like every other facade."""

    @staticmethod
    def _problem():
        from repro.explore import Continuous, DesignSpace, Objective
        from repro.scheduler import CampaignConfig

        space = DesignSpace({"cap_w": Continuous(8_000.0, 16_000.0)})
        objective = Objective.minimize("total_energy_j")
        config = CampaignConfig(n_nodes=4, n_jobs=8, root_seed=3,
                                load_factor=1.1)
        return space, objective, config

    def test_n_steps_warns_and_maps_to_budget(self):
        from repro import explore
        space, objective, config = self._problem()
        with pytest.warns(DeprecationWarning, match="n_steps.*deprecated.*budget"):
            trace = explore(space, objective, searcher="random",
                            n_steps=3, seed=1, config=config,
                            base={"policy": "easy"})
        assert trace.budget == 3 and len(trace.steps) == 3

    def test_rng_seed_warns_and_maps_to_seed(self):
        from repro import explore
        space, objective, config = self._problem()
        with pytest.warns(DeprecationWarning, match="rng_seed.*deprecated.*seed"):
            trace = explore(space, objective, searcher="random",
                            budget=2, rng_seed=5, config=config,
                            base={"policy": "easy"})
        assert trace.seed == 5

    def test_both_spellings_is_an_error(self):
        from repro import explore
        space, objective, config = self._problem()
        with pytest.raises(TypeError, match="both"):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                explore(space, objective, budget=2, n_steps=3, config=config,
                        base={"policy": "easy"})

    def test_unknown_kwarg_rejected(self):
        from repro import explore
        space, objective, config = self._problem()
        with pytest.raises(TypeError, match="unexpected keyword"):
            explore(space, objective, budgget=2, config=config,
                    base={"policy": "easy"})

    def test_canonical_spellings_are_silent(self):
        from repro import explore
        space, objective, config = self._problem()
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            trace = explore(space, objective, searcher="random", budget=2,
                            seed=0, config=config, base={"policy": "easy"})
        assert len(trace.steps) == 2


class TestRejectUnknownKwargs:
    """One shared error path for leftover kwargs — and, since the
    config runtime routes file diagnostics through it, the message must
    name *every* unknown spelling (sorted), not one arbitrary pick."""

    def test_single_unknown_keeps_the_classic_message(self):
        from repro.compat import reject_unknown_kwargs
        with pytest.raises(TypeError,
                           match="got an unexpected keyword argument 'zap'"):
            reject_unknown_kwargs("Thing", {"zap": 1})

    def test_all_unknowns_reported_in_sorted_order(self):
        """Regression: only ``next(iter(kwargs))`` — one arbitrary
        name — used to be reported when several were left over."""
        from repro.compat import reject_unknown_kwargs
        with pytest.raises(
            TypeError,
            match=r"unexpected keyword arguments 'alpha', 'beta', 'zeta'",
        ):
            reject_unknown_kwargs("Thing", {"zeta": 1, "alpha": 2, "beta": 3})

    def test_known_fields_named_when_provided(self):
        from repro.compat import reject_unknown_kwargs
        with pytest.raises(TypeError, match=r"\(known: bar, foo\)"):
            reject_unknown_kwargs("Section", {"baz": 1}, known=("foo", "bar"))

    def test_empty_kwargs_pass_silently(self):
        from repro.compat import reject_unknown_kwargs
        reject_unknown_kwargs("Thing", {}, known=("a",))

    def test_explore_reports_every_unknown_kwarg(self):
        """The facades inherit the all-names behaviour for free."""
        from repro import explore
        space, objective, config = TestExploreAliases._problem()
        with pytest.raises(TypeError, match=r"'budgget', 'seeed'"):
            explore(space, objective, budgget=2, seeed=1, config=config,
                    base={"policy": "easy"})


class TestTopLevelExploreSurface:
    def test_explore_names_reexported(self):
        import repro
        for name in ("DesignSpace", "Objective", "ExplorationTrace",
                     "ExplorationEnv", "Continuous", "Integer",
                     "Categorical", "explore"):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_top_level_explore_is_the_callable(self):
        # ``from repro import explore`` hands out the entry point, while
        # the package stays importable through sys.modules.
        import importlib

        import repro
        assert callable(repro.explore)
        module = importlib.import_module("repro.explore")
        assert module.explore is repro.explore
