"""Tests for energy metrics, TCO and the Top500/Green500 snapshot."""

import pytest

from repro.analysis import (
    NOV2016_SNAPSHOT,
    SystemEntry,
    TcoModel,
    davide_projection,
    efficiency_ratio,
    energy_delay_product,
    energy_to_solution_j,
    flops_per_watt,
    green500_ranking,
    pue,
    top500_ranking,
)


class TestMetrics:
    def test_flops_per_watt(self):
        assert flops_per_watt(1e15, 1e5) == pytest.approx(1e10)
        with pytest.raises(ValueError):
            flops_per_watt(1e15, 0.0)
        with pytest.raises(ValueError):
            flops_per_watt(-1.0, 1.0)

    def test_ets_and_edp(self):
        assert energy_to_solution_j(100.0, 10.0) == 1000.0
        assert energy_delay_product(1000.0, 10.0) == 10000.0
        with pytest.raises(ValueError):
            energy_to_solution_j(-1.0, 1.0)
        with pytest.raises(ValueError):
            energy_delay_product(-1.0, 1.0)

    def test_pue(self):
        assert pue(110e3, 100e3) == pytest.approx(1.1)
        with pytest.raises(ValueError):
            pue(90e3, 100e3)
        with pytest.raises(ValueError):
            pue(1.0, 0.0)


class TestTco:
    def model(self):
        return TcoModel(capex=2_000_000.0, it_power_w=100e3, pue=1.1,
                        electricity_price_per_kwh=0.25, lifetime_years=5.0)

    def test_annual_energy(self):
        m = self.model()
        # 100 kW * 1.1 * 8760 h * 0.85 util = ~819 MWh/yr.
        assert m.annual_energy_kwh == pytest.approx(819e3, rel=0.01)

    def test_energy_is_significant_tco_slice(self):
        # The paper's motivation: electricity is a large share of TCO.
        m = self.model()
        assert 0.2 < m.energy_fraction < 0.6

    def test_total_includes_all_components(self):
        m = self.model()
        assert m.total == pytest.approx(
            m.capex + m.lifetime_energy_cost + m.lifetime_maintenance_cost
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            TcoModel(capex=-1.0, it_power_w=1e3)
        with pytest.raises(ValueError):
            TcoModel(capex=1.0, it_power_w=1e3, pue=0.9)
        with pytest.raises(ValueError):
            TcoModel(capex=1.0, it_power_w=1e3, utilization=0.0)


class TestSnapshot:
    def test_taihulight_tops_top500(self):
        assert top500_ranking()[0].name == "Sunway TaihuLight"

    def test_paper_efficiency_figures(self):
        by_name = {e.name: e for e in NOV2016_SNAPSHOT}
        # Paper: TaihuLight 6 GF/W, Tianhe-2 ~2 GF/W, SaturnV 9.5, Piz Daint 7.5.
        assert by_name["Sunway TaihuLight"].gflops_per_w == pytest.approx(6.0, rel=0.02)
        assert by_name["Tianhe-2"].gflops_per_w == pytest.approx(1.9, rel=0.05)
        assert by_name["DGX SaturnV"].gflops_per_w == pytest.approx(9.5, rel=0.02)
        assert by_name["Piz Daint"].gflops_per_w == pytest.approx(7.5, rel=0.02)

    def test_taihulight_3x_tianhe2(self):
        assert efficiency_ratio("Sunway TaihuLight", "Tianhe-2") == pytest.approx(3.0, rel=0.1)

    def test_green500_top_two_use_p100(self):
        top2 = green500_ranking()[:2]
        assert {e.name for e in top2} == {"DGX SaturnV", "Piz Daint"}
        assert all(e.accelerator == "P100" for e in top2)

    def test_davide_projection_leads_green500(self):
        davide = davide_projection()
        ranking = green500_ranking(NOV2016_SNAPSHOT + [davide])
        # ~7.6 GF/W Linpack-derated: competitive with the 2016 leaders.
        assert ranking.index(davide) <= 2
        assert davide.gflops_per_w > 7.0

    def test_entry_validation(self):
        with pytest.raises(ValueError):
            SystemEntry("x", rmax_pflops=0.0, power_mw=1.0)
        with pytest.raises(ValueError):
            davide_projection(linpack_efficiency=0.0)

    def test_unknown_system_in_ratio(self):
        with pytest.raises(KeyError):
            efficiency_ratio("Nonexistent", "Tianhe-2")
