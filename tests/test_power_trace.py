"""Tests for the PowerTrace time-series type."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.power import PowerTrace, trace_from_function


def uniform_trace(values, rate=10.0, t0=0.0):
    values = np.asarray(values, dtype=float)
    t = t0 + np.arange(values.size) / rate
    return PowerTrace(t, values)


class TestConstruction:
    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(np.arange(3.0), np.arange(4.0))

    def test_2d_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(np.zeros((2, 2)), np.zeros((2, 2)))

    def test_non_monotone_times_rejected(self):
        with pytest.raises(ValueError):
            PowerTrace(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_empty_trace_allowed(self):
        t = PowerTrace(np.array([]), np.array([]))
        assert len(t) == 0
        assert t.duration_s == 0.0
        assert t.energy_j() == 0.0
        assert t.mean_power_w() == 0.0
        assert t.peak_power_w() == 0.0


class TestIntegrals:
    def test_constant_power_energy(self):
        tr = uniform_trace([100.0] * 11, rate=1.0)  # 10 s at 100 W
        assert tr.energy_j() == pytest.approx(1000.0)
        assert tr.mean_power_w() == pytest.approx(100.0)

    def test_linear_ramp_energy(self):
        t = np.linspace(0, 10, 101)
        tr = PowerTrace(t, 10 * t)  # ramp 0..100 W over 10 s
        assert tr.energy_j() == pytest.approx(500.0)

    def test_peak(self):
        tr = uniform_trace([1.0, 5.0, 3.0])
        assert tr.peak_power_w() == 5.0

    def test_sample_rate(self):
        tr = uniform_trace(np.zeros(101), rate=50.0)
        assert tr.sample_rate_hz == pytest.approx(50.0)


class TestTransforms:
    def test_slice_window(self):
        tr = uniform_trace(np.arange(10.0), rate=1.0)
        s = tr.slice(2.0, 5.0)
        assert len(s) == 4
        assert s.power_w[0] == 2.0
        with pytest.raises(ValueError):
            tr.slice(5.0, 2.0)

    def test_shift_offsets_times(self):
        tr = uniform_trace([1.0, 2.0], rate=1.0)
        assert tr.shift(3.0).times_s[0] == 3.0

    def test_resample_preserves_constant(self):
        tr = uniform_trace([42.0] * 11, rate=1.0)
        r = tr.resample(7.0)
        assert np.allclose(r.power_w, 42.0)
        assert r.sample_rate_hz == pytest.approx(7.0, rel=0.05)

    def test_value_at_interpolates(self):
        tr = uniform_trace([0.0, 10.0], rate=1.0)
        assert tr.value_at(0.5) == pytest.approx(5.0)

    def test_downsample_mean_blocks(self):
        tr = uniform_trace([1.0, 3.0, 5.0, 7.0], rate=1.0)
        d = tr.downsample_mean(2)
        assert np.allclose(d.power_w, [2.0, 6.0])
        assert np.allclose(d.times_s, [0.5, 2.5])

    def test_downsample_factor_one_identity(self):
        tr = uniform_trace([1.0, 2.0, 3.0])
        assert tr.downsample_mean(1) is tr

    def test_downsample_preserves_mean_power_of_full_blocks(self):
        rng = np.random.default_rng(7)
        tr = uniform_trace(rng.uniform(0, 100, 64), rate=100.0)
        d = tr.downsample_mean(8)
        assert d.power_w.mean() == pytest.approx(tr.power_w.mean())


class TestComparison:
    def test_energy_error_zero_for_identical(self):
        tr = uniform_trace(np.linspace(10, 20, 50))
        assert tr.energy_error_fraction(tr) == pytest.approx(0.0)

    def test_energy_error_sign(self):
        ref = uniform_trace([100.0] * 50)
        high = uniform_trace([110.0] * 50)
        assert high.energy_error_fraction(ref) == pytest.approx(0.10, rel=1e-6)
        assert ref.energy_error_fraction(high) < 0

    def test_non_overlapping_traces_rejected(self):
        a = uniform_trace([1.0, 2.0], rate=1.0, t0=0.0)
        b = uniform_trace([1.0, 2.0], rate=1.0, t0=100.0)
        with pytest.raises(ValueError):
            a.energy_error_fraction(b)

    def test_rms_error(self):
        a = uniform_trace([10.0] * 10)
        b = uniform_trace([13.0] * 10)
        assert a.rms_error_w(b) == pytest.approx(3.0)

    def test_correlation_of_identical_signals(self):
        t = np.linspace(0, 1, 200)
        sig = PowerTrace(t, np.sin(8 * np.pi * t) + 2)
        assert sig.correlation(sig) == pytest.approx(1.0)

    def test_correlation_destroyed_by_shift(self):
        t = np.linspace(0, 1, 2000)
        sig = PowerTrace(t, np.sin(40 * np.pi * t) + 2)
        shifted = sig.shift(0.025)  # half a period of the 20 Hz sine
        assert sig.correlation(shifted) < 0.0

    def test_constant_signal_correlation_is_zero(self):
        a = uniform_trace([5.0] * 10)
        assert a.correlation(a) == 0.0


class TestArithmetic:
    def test_add_rail_aggregation(self):
        a = uniform_trace([100.0] * 10)
        b = uniform_trace([50.0] * 10)
        assert np.allclose((a + b).power_w, 150.0)

    def test_scaled_affine(self):
        a = uniform_trace([10.0] * 5)
        s = a.scaled(2.0, offset_w=1.0)
        assert np.allclose(s.power_w, 21.0)


class TestTraceFromFunction:
    def test_samples_function(self):
        tr = trace_from_function(lambda t: 2 * t, duration_s=1.0, rate_hz=10.0)
        assert len(tr) == 11
        assert tr.power_w[-1] == pytest.approx(2.0)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            trace_from_function(lambda t: t, duration_s=0.0, rate_hz=10.0)
        with pytest.raises(ValueError):
            trace_from_function(lambda t: t, duration_s=1.0, rate_hz=0.0)


@given(st.lists(st.floats(min_value=0.0, max_value=5000.0), min_size=2, max_size=64))
def test_energy_consistent_with_mean_power(values):
    tr = uniform_trace(values, rate=100.0)
    assert tr.energy_j() == pytest.approx(tr.mean_power_w() * tr.duration_s, rel=1e-9, abs=1e-9)


@given(
    st.lists(st.floats(min_value=0.0, max_value=5000.0), min_size=8, max_size=64),
    st.integers(min_value=1, max_value=4),
)
def test_downsample_never_exceeds_peak(values, factor):
    tr = uniform_trace(values, rate=10.0)
    d = tr.downsample_mean(factor)
    assert d.peak_power_w() <= tr.peak_power_w() + 1e-9
