"""Tests for sensors, ADC, decimation and workload generators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.power import (
    AM335X_ADC,
    HALL_SENSOR,
    SHUNT_SENSOR,
    PhaseAlternation,
    PowerSensor,
    PowerTrace,
    SarAdc,
    boxcar_decimate,
    cascaded_average,
    effective_bits_gain,
    hpc_job_power,
    naive_decimate,
    quantization_snr_db,
    random_phase_workload,
    sine_ripple,
    square_wave,
    trace_from_function,
)


def constant_trace(watts, duration=0.01, rate=1e6):
    return trace_from_function(lambda t: np.full_like(t, watts), duration, rate)


class TestSensors:
    def test_shunt_sensor_accuracy_on_dc(self):
        sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(1))
        out = sensor.measure(constant_trace(1000.0))
        # 0.1% gain + 0.5 W offset + 1 W noise -> within ~0.5% of truth.
        assert out.mean_power_w() == pytest.approx(1000.0, rel=0.005)

    def test_hall_sensor_noisier_than_shunt(self):
        truth = constant_trace(1000.0)
        shunt = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(2)).measure(truth)
        hall = PowerSensor(HALL_SENSOR, rng=np.random.default_rng(2)).measure(truth)
        assert hall.power_w.std() > shunt.power_w.std()

    def test_bandwidth_attenuates_fast_ripple(self):
        # 400 kHz ripple is above the shunt chain's 200 kHz pole.
        fn = sine_ripple(100.0, 400e3)
        truth = trace_from_function(lambda t: 1000.0 + fn(t), duration_s=0.001, rate_hz=8e6)
        sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(3))
        out = sensor.measure(truth)
        ripple_in = truth.power_w.std()
        ripple_out = out.slice(0.0002, 0.001).power_w.std()  # skip filter settling
        assert ripple_out < ripple_in * 0.8

    def test_output_clipped_to_full_scale(self):
        sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(4))
        out = sensor.measure(constant_trace(10000.0))  # above 2.5 kW full scale
        assert out.peak_power_w() <= SHUNT_SENSOR.full_scale_w

    def test_volts_roundtrip(self):
        sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(5))
        v = sensor.output_volts(constant_trace(1250.0))
        w = sensor.calibrate_codes_to_watts(v.power_w)
        assert np.mean(w) == pytest.approx(1250.0, rel=0.01)

    def test_short_trace_rejected(self):
        sensor = PowerSensor()
        with pytest.raises(ValueError):
            sensor.measure(PowerTrace(np.array([0.0]), np.array([1.0])))


class TestSarAdc:
    def test_spec_matches_paper(self):
        assert AM335X_ADC.bits == 12
        assert AM335X_ADC.max_rate_hz == pytest.approx(1.6e6)
        assert AM335X_ADC.n_channels == 8

    def test_quantization_snr_formula(self):
        assert quantization_snr_db(12) == pytest.approx(74.0, abs=0.1)
        with pytest.raises(ValueError):
            quantization_snr_db(0)

    def test_per_channel_rate_division(self):
        adc = SarAdc()
        assert adc.per_channel_rate_hz(1.6e6, 8) == pytest.approx(200e3)
        with pytest.raises(ValueError):
            adc.per_channel_rate_hz(1.6e6, 9)
        with pytest.raises(ValueError):
            adc.per_channel_rate_hz(2e6, 1)

    def test_quantize_clips_and_bounds(self):
        adc = SarAdc(rng=np.random.default_rng(0))
        codes = adc.quantize(np.array([-1.0, 0.0, 0.9, 5.0]))
        assert codes.min() >= 0
        assert codes.max() <= 4095

    def test_roundtrip_error_within_lsb(self):
        adc = SarAdc(rng=np.random.default_rng(0))
        v_in = np.linspace(0.05, 1.75, 1000)
        v_out = adc.codes_to_volts(adc.quantize(v_in))
        # Error bounded by 1 LSB plus a few sigma of input noise.
        assert np.abs(v_out - v_in).max() < AM335X_ADC.lsb_v + 5 * AM335X_ADC.input_noise_v_rms

    def test_sample_rate_limits(self):
        adc = SarAdc()
        analog = constant_trace(1.0, duration=0.001, rate=1e7)
        with pytest.raises(ValueError):
            adc.sample(analog, rate_hz=2e6)
        with pytest.raises(ValueError):
            adc.sample(analog, rate_hz=800e3, channel_phase=1.0)

    def test_sample_produces_expected_count(self):
        adc = SarAdc(rng=np.random.default_rng(0))
        analog = constant_trace(1.0, duration=0.01, rate=1e7)  # volts stand-in
        out = adc.sample(analog, rate_hz=800e3)
        assert len(out) == pytest.approx(8000, abs=2)

    def test_full_chain_dc_accuracy(self):
        adc = SarAdc(rng=np.random.default_rng(0))
        sensor = PowerSensor(SHUNT_SENSOR, rng=np.random.default_rng(1))
        truth = constant_trace(1500.0, duration=0.005, rate=8e6)
        measured = adc.acquire_power(truth, sensor, rate_hz=800e3)
        assert measured.mean_power_w() == pytest.approx(1500.0, rel=0.01)

    def test_full_chain_type_check(self):
        adc = SarAdc()
        with pytest.raises(TypeError):
            adc.acquire_power(constant_trace(1.0), sensor="nope", rate_hz=1e5)


class TestDecimation:
    def test_boxcar_reduces_noise(self):
        rng = np.random.default_rng(0)
        t = np.arange(16000) / 800e3
        noisy = PowerTrace(t, 1000.0 + rng.normal(0, 10, t.size))
        dec = boxcar_decimate(noisy, 16)
        assert dec.power_w.std() < noisy.power_w.std() / 3.0  # ~ sqrt(16)=4x

    def test_naive_decimation_keeps_noise(self):
        rng = np.random.default_rng(0)
        t = np.arange(16000) / 800e3
        noisy = PowerTrace(t, 1000.0 + rng.normal(0, 10, t.size))
        dec = naive_decimate(noisy, 16)
        assert dec.power_w.std() == pytest.approx(10.0, rel=0.2)

    def test_cascade_equivalent_to_single_boxcar(self):
        rng = np.random.default_rng(1)
        t = np.arange(1600) / 800e3
        tr = PowerTrace(t, rng.uniform(500, 1500, t.size))
        single = boxcar_decimate(tr, 16)
        staged = cascaded_average(tr, [4, 4])
        assert np.allclose(single.power_w, staged.power_w)

    def test_effective_bits_gain_x16_is_two_bits(self):
        assert effective_bits_gain(16) == pytest.approx(2.0)
        assert effective_bits_gain(1) == 0.0
        with pytest.raises(ValueError):
            effective_bits_gain(0)

    def test_invalid_factors(self):
        tr = constant_trace(1.0, duration=0.001, rate=1e5)
        with pytest.raises(ValueError):
            boxcar_decimate(tr, 0)
        with pytest.raises(ValueError):
            naive_decimate(tr, 0)
        with pytest.raises(ValueError):
            cascaded_average(tr, [])


class TestWorkloads:
    def test_square_wave_levels(self):
        fn = square_wave(100.0, 900.0, period_s=0.1, duty=0.5)
        t = np.array([0.025, 0.075])  # mid-high, mid-low
        vals = fn(t)
        assert vals[0] == pytest.approx(900.0, rel=0.01)
        assert vals[1] == pytest.approx(100.0, rel=0.1)

    def test_square_wave_validation(self):
        with pytest.raises(ValueError):
            square_wave(1, 2, period_s=0)
        with pytest.raises(ValueError):
            square_wave(1, 2, period_s=1, duty=0.0)
        with pytest.raises(ValueError):
            square_wave(5, 2, period_s=1)

    def test_hpc_job_power_mean_between_levels(self):
        params = PhaseAlternation()
        tr = trace_from_function(hpc_job_power(params), duration_s=1.0, rate_hz=100e3)
        assert params.idle_w < tr.mean_power_w() < params.compute_w

    def test_hpc_job_duty_cycle_reflected_in_mean(self):
        p_high = PhaseAlternation(duty=0.9, ripple_w=0, drift_w=0)
        p_low = PhaseAlternation(duty=0.3, ripple_w=0, drift_w=0)
        t_high = trace_from_function(hpc_job_power(p_high), 1.0, 50e3)
        t_low = trace_from_function(hpc_job_power(p_low), 1.0, 50e3)
        assert t_high.mean_power_w() > t_low.mean_power_w()

    def test_random_phase_workload_deterministic_per_seed(self):
        a = random_phase_workload(1.0, 1e4, np.random.default_rng(42))
        b = random_phase_workload(1.0, 1e4, np.random.default_rng(42))
        assert np.array_equal(a.power_w, b.power_w)

    def test_random_phase_workload_levels(self):
        tr = random_phase_workload(2.0, 1e4, np.random.default_rng(0))
        assert 600 * 0.8 < tr.mean_power_w() < 1850 * 1.1
        assert tr.power_w.min() >= 0.0

    def test_random_phase_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_phase_workload(0.0, 1e4, rng)
        with pytest.raises(ValueError):
            random_phase_workload(1.0, 1e4, rng, mean_phase_s=0.0)

    @settings(max_examples=20, deadline=None)
    @given(st.floats(min_value=0.3, max_value=0.9))
    def test_square_wave_mean_tracks_duty(self, duty):
        fn = square_wave(0.0, 1000.0, period_s=0.01, duty=duty)
        tr = trace_from_function(fn, duration_s=0.1, rate_hz=100e3)
        assert tr.mean_power_w() == pytest.approx(1000.0 * duty, rel=0.08)
