"""Tests for the TSDB, energy accounting and the phase profiler."""

import numpy as np
import pytest

from repro.power import PowerTrace
from repro.scheduler import Job, JobRecord
from repro.telemetry import (
    EnergyAccountant,
    PhaseMarker,
    PowerProfiler,
    SeriesKey,
    TimeSeriesDB,
)


def uniform_trace(values, rate=10.0, t0=0.0):
    values = np.asarray(values, dtype=float)
    return PowerTrace(t0 + np.arange(values.size) / rate, values)


class TestSeriesKey:
    def test_of_sorts_tags(self):
        a = SeriesKey.of("m", b="2", a="1")
        b = SeriesKey.of("m", a="1", b="2")
        assert a == b

    def test_matches_partial_filters(self):
        key = SeriesKey.of("node_power", node="3", rail="gpu0")
        assert key.matches("node_power")
        assert key.matches(node="3")
        assert key.matches("node_power", node="3", rail="gpu0")
        assert not key.matches("temp")
        assert not key.matches(node="4")

    def test_empty_metric_rejected(self):
        with pytest.raises(ValueError):
            SeriesKey.of("")


class TestTimeSeriesDB:
    def test_insert_and_query(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p", node="0")
        for t in range(10):
            db.insert(key, float(t), float(t) * 2)
        t, v = db.query(key, 2.0, 5.0)
        assert list(t) == [2.0, 3.0, 4.0, 5.0]
        assert list(v) == [4.0, 6.0, 8.0, 10.0]

    def test_query_unknown_key_raises(self):
        with pytest.raises(KeyError):
            TimeSeriesDB().query(SeriesKey.of("x"))

    def test_out_of_order_inserts_sorted(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p")
        for t in [5.0, 1.0, 3.0, 2.0, 4.0]:
            db.insert(key, t, t)
        t, v = db.query(key)
        assert list(t) == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_bulk_insert_and_trace_roundtrip(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p", node="1")
        trace = uniform_trace(np.arange(100.0))
        assert db.insert_trace(key, trace) == 100
        out = db.query_trace(key)
        assert np.allclose(out.power_w, trace.power_w)

    def test_growth_beyond_initial_chunk(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p")
        n = 5000
        db.insert_many(key, np.arange(n, dtype=float), np.ones(n))
        assert db.sample_count(key) == n

    def test_downsample_mean(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p")
        db.insert_many(key, np.arange(10, dtype=float), np.arange(10, dtype=float))
        t, v = db.downsample(key, bucket_s=5.0, agg="mean")
        assert list(v) == [2.0, 7.0]

    def test_downsample_aggregations(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p")
        db.insert_many(key, [0.0, 1.0, 2.0], [1.0, 5.0, 3.0])
        _, vmax = db.downsample(key, 10.0, "max")
        _, vcount = db.downsample(key, 10.0, "count")
        assert vmax[0] == 5.0 and vcount[0] == 3.0
        with pytest.raises(ValueError):
            db.downsample(key, 10.0, "median")
        with pytest.raises(ValueError):
            db.downsample(key, 0.0)

    def test_keys_filtering(self):
        db = TimeSeriesDB()
        db.insert(SeriesKey.of("p", node="0"), 0.0, 1.0)
        db.insert(SeriesKey.of("p", node="1"), 0.0, 1.0)
        db.insert(SeriesKey.of("temp", node="0"), 0.0, 1.0)
        assert len(db.keys("p")) == 2
        assert len(db.keys(node="0")) == 2
        assert len(db.keys("p", node="1")) == 1

    def test_retention_trim(self):
        db = TimeSeriesDB()
        key = SeriesKey.of("p")
        db.insert_many(key, np.arange(10, dtype=float), np.ones(10))
        dropped = db.retention_trim(5.0)
        assert dropped == 5
        t, _ = db.query(key)
        assert t.min() == 5.0

    def test_misaligned_bulk_rejected(self):
        db = TimeSeriesDB()
        with pytest.raises(ValueError):
            db.insert_many(SeriesKey.of("p"), [1.0, 2.0], [1.0])


class TestEnergyAccountant:
    def make_record(self, node_ids=(0,), start=0.0, end=100.0, power=1500.0):
        job = Job(job_id=1, user="alice", app="qe", n_nodes=len(node_ids),
                  walltime_req_s=200.0, submit_time_s=0.0,
                  true_runtime_s=end - start, true_power_per_node_w=power)
        rec = JobRecord(job=job)
        rec.start_time_s = start
        rec.end_time_s = end
        rec.nodes = tuple(node_ids)
        rec.energy_j = power * len(node_ids) * (end - start)
        return rec

    def test_energy_from_measured_series(self):
        db = TimeSeriesDB()
        acct = EnergyAccountant(db)
        # Node 0 measured at a flat 1480 W over the job window.
        db.insert_many(acct.node_key(0), np.linspace(0, 100, 101), np.full(101, 1480.0))
        rec = self.make_record()
        assert acct.job_energy_j(rec) == pytest.approx(148e3)

    def test_fallback_to_simulated_energy(self):
        acct = EnergyAccountant(TimeSeriesDB())
        rec = self.make_record()
        assert acct.job_energy_j(rec) == pytest.approx(150e3)

    def test_multi_node_sum(self):
        db = TimeSeriesDB()
        acct = EnergyAccountant(db)
        for node in (0, 1):
            db.insert_many(acct.node_key(node), np.linspace(0, 100, 11), np.full(11, 1000.0))
        rec = self.make_record(node_ids=(0, 1))
        assert acct.job_energy_j(rec) == pytest.approx(200e3)

    def test_billing_price(self):
        acct = EnergyAccountant(TimeSeriesDB(), price_per_kwh=0.5)
        bill = acct.bill(self.make_record())
        assert bill.energy_kwh == pytest.approx(150e3 / 3.6e6)
        assert bill.cost == pytest.approx(bill.energy_kwh * 0.5)
        assert bill.mean_power_w == pytest.approx(1500.0)

    def test_unfinished_job_rejected(self):
        acct = EnergyAccountant(TimeSeriesDB())
        rec = self.make_record()
        rec.end_time_s = None
        with pytest.raises(ValueError):
            acct.job_energy_j(rec)

    def test_statements_roll_up_per_user(self):
        acct = EnergyAccountant(TimeSeriesDB())
        recs = [self.make_record(), self.make_record()]
        statements = acct.statements(recs)
        assert statements["alice"].n_jobs == 2
        assert statements["alice"].total_energy_j == pytest.approx(300e3)

    def test_energy_by_app(self):
        acct = EnergyAccountant(TimeSeriesDB())
        by_app = acct.energy_by_app([self.make_record()])
        assert by_app == {"qe": pytest.approx(150e3)}

    def test_negative_price_rejected(self):
        with pytest.raises(ValueError):
            EnergyAccountant(TimeSeriesDB(), price_per_kwh=-0.1)


class TestPowerProfiler:
    def phase_trace(self):
        # 10 s trace: 1800 W in [2k, 2k+1), 600 W otherwise (1 kHz sampling).
        t = np.arange(0, 10, 0.001)
        p = np.where((t % 2) < 1.0, 1800.0, 600.0)
        return PowerTrace(t, p)

    def markers(self):
        out = []
        for k in range(5):
            out.append(PhaseMarker("compute", 2.0 * k, 2.0 * k + 1.0))
            out.append(PhaseMarker("mpi-wait", 2.0 * k + 1.0, 2.0 * k + 2.0))
        return out

    def test_region_attribution(self):
        profiler = PowerProfiler(self.phase_trace())
        profiles = profiler.profile(self.markers())
        assert profiles["compute"].mean_power_w == pytest.approx(1800.0, rel=0.01)
        assert profiles["mpi-wait"].mean_power_w == pytest.approx(600.0, rel=0.01)
        assert profiles["compute"].n_instances == 5

    def test_clock_skew_collapses_separation(self):
        # Half a phase of clock error smears each region evenly over hot
        # and cold power: the contrast collapses toward zero.
        aligned = PowerProfiler(self.phase_trace(), clock_offset_s=0.0)
        skewed = PowerProfiler(self.phase_trace(), clock_offset_s=0.5)
        sep_aligned = aligned.region_power_separation(self.markers(), "compute", "mpi-wait")
        sep_skewed = skewed.region_power_separation(self.markers(), "compute", "mpi-wait")
        assert sep_aligned > 1100.0
        assert abs(sep_skewed) < sep_aligned * 0.2

    def test_marker_validation(self):
        with pytest.raises(ValueError):
            PhaseMarker("x", 2.0, 1.0)

    def test_profiler_validation(self):
        with pytest.raises(ValueError):
            PowerProfiler(PowerTrace(np.array([0.0]), np.array([1.0])))
        profiler = PowerProfiler(self.phase_trace())
        with pytest.raises(ValueError):
            profiler.profile([])
        with pytest.raises(KeyError):
            profiler.region_power_separation(self.markers(), "compute", "nonexistent")

    def test_short_region_uses_point_estimate(self):
        profiler = PowerProfiler(self.phase_trace())
        # A 0.1 ms region between samples still gets an energy estimate.
        profiles = profiler.profile([PhaseMarker("tiny", 0.50001, 0.50011)])
        assert profiles["tiny"].total_energy_j > 0
