"""Tests for the time-varying-budget scheduler and the exascale projection."""

import numpy as np
import pytest

from repro.analysis import project_exascale
from repro.scheduler import (
    ClusterSimulator,
    Job,
    TimeVaryingBudgetScheduler,
    WorkloadConfig,
    WorkloadGenerator,
    day_night_budget,
    heat_wave_budget,
)


def oracle(j):
    return j.true_power_w


class TestBudgetProfiles:
    def test_day_night_profile(self):
        budget = day_night_budget(40e3, 70e3, day_start_h=8, day_end_h=20)
        assert budget(9 * 3600.0) == 40e3       # 09:00
        assert budget(22 * 3600.0) == 70e3      # 22:00
        assert budget((24 + 9) * 3600.0) == 40e3  # repeats daily
        with pytest.raises(ValueError):
            day_night_budget(0.0, 70e3)
        with pytest.raises(ValueError):
            day_night_budget(40e3, 70e3, day_start_h=20, day_end_h=8)

    def test_heat_wave_profile(self):
        budget = heat_wave_budget(60e3, 35e3, wave_start_s=100.0, wave_end_s=200.0)
        assert budget(50.0) == 60e3
        assert budget(150.0) == 35e3
        assert budget(250.0) == 60e3
        with pytest.raises(ValueError):
            heat_wave_budget(60e3, 35e3, wave_start_s=200.0, wave_end_s=100.0)


class TestTimeVaryingScheduler:
    def workload(self, seed=0, n=120):
        return WorkloadGenerator(
            WorkloadConfig(n_jobs=n, cluster_nodes=45, load_factor=1.1),
            rng=np.random.default_rng(seed),
        ).generate()

    def test_effective_budget_with_lookahead(self):
        budget = heat_wave_budget(60e3, 30e3, wave_start_s=1000.0, wave_end_s=2000.0)
        policy = TimeVaryingBudgetScheduler(budget, lookahead_s=1800.0, lookahead_step_s=300.0)
        # Well before the wave: full budget.
        assert policy.effective_budget_w(0.0) == 30e3  # lookahead sees the wave
        assert policy.effective_budget_w(2500.0) == 60e3
        # Inside the wave: reduced.
        assert policy.effective_budget_w(1500.0) == 30e3

    def test_power_follows_the_envelope(self):
        # Tight budget in a mid-campaign window; power must dip there.
        # Lookahead covering the maximum walltime (24 h) guarantees no
        # admitted job straddles the downward step.
        jobs = self.workload(seed=1)
        makespan_guess = max(j.submit_time_s for j in jobs) * 1.5
        wave = (makespan_guess * 0.3, makespan_guess * 0.6)
        budget = heat_wave_budget(65e3, 35e3, *wave)
        policy = TimeVaryingBudgetScheduler(
            budget, predictor=oracle, lookahead_s=24 * 3600.0, lookahead_step_s=1800.0
        )
        result = ClusterSimulator(45, policy).run(jobs)
        trace = result.power_trace
        in_wave = trace.slice(*wave)
        assert len(in_wave) >= 2
        # Inside the wave the envelope holds, modulo the single-job
        # force-admission escape hatch (a lone over-budget job on an
        # otherwise-empty machine — trimmed reactively in production).
        assert in_wave.mean_power_w() <= 35e3 * 1.05
        assert in_wave.peak_power_w() <= 35e3 * 1.15
        # Outside the wave the system uses the full envelope eventually.
        assert trace.peak_power_w() > in_wave.peak_power_w()
        assert trace.peak_power_w() > 50e3

    def test_constant_budget_matches_power_aware(self):
        from repro.scheduler import PowerAwareScheduler

        jobs = self.workload(seed=2, n=80)
        constant = TimeVaryingBudgetScheduler(lambda t: 50e3, predictor=oracle)
        plain = PowerAwareScheduler(50e3, predictor=oracle)
        r1 = ClusterSimulator(45, constant).run(jobs)
        r2 = ClusterSimulator(45, plain).run(jobs)
        assert r1.mean_wait_s() == pytest.approx(r2.mean_wait_s(), rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            TimeVaryingBudgetScheduler(lambda t: 50e3, lookahead_s=-1.0)
        policy = TimeVaryingBudgetScheduler(lambda t: -5.0)
        with pytest.raises(ValueError):
            policy.effective_budget_w(0.0)


class TestExascaleProjection:
    def test_baseline_needs_far_more_than_20mw(self):
        projections = {p.scenario: p for p in project_exascale()}
        baseline = projections["D.A.V.I.D.E. baseline (2017)"]
        # ~61k Garrison nodes at 2 kW: >100 MW.
        assert baseline.system_power_mw > 100.0
        assert not baseline.within_20mw_target

    def test_ten_x_scenario_approaches_target(self):
        projections = {p.scenario: p for p in project_exascale()}
        leap = projections["exascale-era silicon (~10x)"]
        assert leap.system_power_mw < 20.0
        assert leap.within_20mw_target

    def test_node_count_consistent(self):
        [p] = project_exascale(efficiency_gains={"x": 1.0})
        # 1 EFlops / (22 TF * 0.75) ~= 61k nodes.
        assert p.n_nodes == pytest.approx(61200, rel=0.02)

    def test_efficiency_scales_linearly(self):
        a, b = project_exascale(efficiency_gains={"1x": 1.0, "4x": 4.0})
        assert b.system_power_mw == pytest.approx(a.system_power_mw / 4)
        assert b.gflops_per_w == pytest.approx(a.gflops_per_w * 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            project_exascale(target_flops=0.0)
        with pytest.raises(ValueError):
            project_exascale(linpack_efficiency=0.0)
        with pytest.raises(ValueError):
            project_exascale(efficiency_gains={"bad": 0.0})
