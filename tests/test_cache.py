"""Property tests for the content-addressed campaign cache.

DESIGN.md §11: ``scenario_key`` is a *semantic* digest — equal exactly
when two (config, scenario) specs would run the identical simulation.
Three families of properties pin it:

1. **Stability** — invariant under dataclass field reordering,
   default-equivalent spellings, cosmetic fields, and the interpreter
   (no ``repr``/``id()``/hash-seed leakage across processes).
2. **Distinctness** — every semantic knob moves the key, and a
   randomized 200-cell grid yields 200 distinct keys.
3. **Stores** — both backends round-trip ``ScenarioResult``\\ s exactly
   (the on-disk backend field-by-field through JSON+NPZ), account
   hits/misses, refuse corruption, and never downgrade a
   payload-carrying entry.
"""

import dataclasses
import os
import subprocess
import sys
from dataclasses import dataclass
from typing import Optional

import numpy as np
import pytest

from repro.scheduler import (
    CampaignCheckpoint,
    CampaignConfig,
    DirectoryResultStore,
    MemoryResultStore,
    NodeOutage,
    Scenario,
    config_key,
    result_digest,
    run_scenario,
    scenario_fingerprint,
    scenario_key,
)

CONFIG = CampaignConfig(n_nodes=8, n_jobs=20, root_seed=11, load_factor=1.1)
CAP = 9e3


@dataclass(frozen=True)
class ReorderedScenario:
    """Field-for-field clone of Scenario declared in a different order.

    ``scenario_key`` reads attributes by name, never positionally — a
    reordered (or duck-typed) spec must produce the identical key.
    """

    label: str = ""
    core: Optional[str] = None
    reference: bool = False
    fairshare_decay: Optional[float] = None
    dvfs_floor: Optional[float] = None
    backfill_depth: Optional[int] = None
    node_outages: tuple = ()
    train_fraction: float = 0.0
    predictor: str = "oracle"
    budget_w: Optional[float] = None
    seed_index: int = 0
    cap_w: Optional[float] = None
    policy: str = "fifo"


class TestKeyStability:
    def test_stable_across_field_reordering(self):
        real = Scenario(policy="power-aware", cap_w=CAP, seed_index=2,
                        predictor="nameplate:1500", train_fraction=0.2)
        clone = ReorderedScenario(policy="power-aware", cap_w=CAP, seed_index=2,
                                  predictor="nameplate:1500", train_fraction=0.2)
        assert scenario_key(CONFIG, real) == scenario_key(CONFIG, clone)
        assert scenario_fingerprint(real) == scenario_fingerprint(clone)

    def test_budget_default_equivalent_to_cap(self):
        implicit = Scenario(policy="power-aware", cap_w=CAP)
        explicit = Scenario(policy="power-aware", cap_w=CAP, budget_w=CAP)
        assert scenario_key(CONFIG, implicit) == scenario_key(CONFIG, explicit)

    def test_predictor_spec_spellings_collapse(self):
        keys = {
            scenario_key(CONFIG, Scenario(policy="power-aware", cap_w=CAP,
                                          predictor=spec))
            for spec in ("nameplate", "nameplate:2000", "nameplate:2000.0")
        }
        assert len(keys) == 1

    def test_ridge_lambda_spellings_collapse(self):
        a = Scenario(policy="power-aware", cap_w=CAP,
                     predictor="ridge", train_fraction=0.4)
        b = Scenario(policy="power-aware", cap_w=CAP,
                     predictor="ridge:1.0", train_fraction=0.4)
        assert scenario_key(CONFIG, a) == scenario_key(CONFIG, b)

    def test_core_spellings_collapse(self):
        default = Scenario(policy="fifo")
        explicit = Scenario(policy="fifo", core="array")
        ref_flag = Scenario(policy="fifo", reference=True)
        ref_core = Scenario(policy="fifo", core="reference")
        assert scenario_key(CONFIG, default) == scenario_key(CONFIG, explicit)
        assert scenario_key(CONFIG, ref_flag) == scenario_key(CONFIG, ref_core)

    def test_label_is_cosmetic(self):
        a = Scenario(policy="easy", cap_w=CAP, label="")
        b = Scenario(policy="easy", cap_w=CAP, label="the same cell")
        assert scenario_key(CONFIG, a) == scenario_key(CONFIG, b)

    def test_unused_knobs_normalized_away_for_non_power_aware(self):
        """FIFO/EASY never read budget_w or predictor: stray spellings
        must not split the cache."""
        plain = Scenario(policy="easy", cap_w=CAP)
        noisy = Scenario(policy="easy", cap_w=CAP, budget_w=123.0,
                         predictor="nameplate:999")
        assert scenario_key(CONFIG, plain) == scenario_key(CONFIG, noisy)

    def test_inactive_exploration_knobs_normalize_away(self):
        """The PR-8 knob fields must not move pre-existing keys: a knob
        left at its default (or dead for the chosen policy) is absent
        from the canonical form, so stores written before the fields
        existed still hit."""
        plain = Scenario(policy="fifo")
        assert scenario_key(CONFIG, plain) == scenario_key(
            CONFIG, dataclasses.replace(plain, backfill_depth=4))
        uncapped = Scenario(policy="easy")
        assert scenario_key(CONFIG, uncapped) == scenario_key(
            CONFIG, dataclasses.replace(uncapped, dvfs_floor=0.5))

    def test_dvfs_floor_at_config_default_is_equivalent(self):
        """Spelling the config's min_speed explicitly is the same cell."""
        base = Scenario(policy="easy", cap_w=CAP)
        spelled = dataclasses.replace(base, dvfs_floor=CONFIG.min_speed)
        assert scenario_key(CONFIG, base) == scenario_key(CONFIG, spelled)

    def test_backfill_depth_respellings_collapse(self):
        """int-like spellings of one depth canonicalize identically."""
        a = Scenario(policy="easy", cap_w=CAP, backfill_depth=8)
        b = dataclasses.replace(a, backfill_depth=np.int64(8))
        assert scenario_key(CONFIG, a) == scenario_key(CONFIG, b)

    def test_outage_order_is_cosmetic(self):
        """Permuted outage tuples are one cell: the simulator sorts its
        outages before running (``ClusterSimulator.__init__``), so two
        listings of the same set must share ``scenario_key`` *and*
        ``scenario_fingerprint`` — a reordered twin used to miss a warm
        store and duplicate through ``merge_results``."""
        o1 = NodeOutage(at_s=10.0, node_id=0, duration_s=60.0)
        o2 = NodeOutage(at_s=20.0, node_id=1, duration_s=60.0)
        o3 = NodeOutage(at_s=20.0, node_id=3, duration_s=90.0)
        a = Scenario(policy="fifo", node_outages=(o1, o2, o3))
        b = Scenario(policy="fifo", node_outages=(o3, o1, o2))
        assert scenario_key(CONFIG, a) == scenario_key(CONFIG, b)
        assert scenario_fingerprint(a) == scenario_fingerprint(b)

    def test_sorted_outages_keep_their_key(self):
        """The canonical form of an already-sorted spec is the spec
        itself — the sort is a pure refinement (KEY_VERSION stays 1),
        so entries stored before the fix still hit."""
        import json as _json
        from repro.scheduler.cache import _canonical_scenario

        o1 = NodeOutage(at_s=10.0, node_id=0, duration_s=60.0)
        o2 = NodeOutage(at_s=20.0, node_id=1, duration_s=60.0)
        entry = _canonical_scenario(
            Scenario(policy="fifo", node_outages=(o1, o2)), CONFIG)
        assert entry["outages"] == [[10.0, 0, 60.0], [20.0, 1, 60.0]]
        # The pre-fix derivation listed outages in spec order; for a
        # sorted spec both derivations serialize identically.
        assert _json.dumps(entry["outages"]) == _json.dumps(
            [[float(o.at_s), int(o.node_id), float(o.duration_s)]
             for o in (o1, o2)])

    def test_fingerprint_collapses_written_out_floor_with_config(self):
        """`scenario_key` drops ``dvfs_floor == config.min_speed`` (the
        default written out); the config-free fingerprint cannot — but
        handed the shared config it must agree with the key."""
        base = Scenario(policy="easy", cap_w=CAP)
        spelled = dataclasses.replace(base, dvfs_floor=CONFIG.min_speed)
        # Config-free: conservative, keeps the entry, fingerprints apart.
        assert scenario_fingerprint(base) != scenario_fingerprint(spelled)
        # Config-threaded: consistent with scenario_key.
        assert scenario_fingerprint(base, CONFIG) == \
            scenario_fingerprint(spelled, CONFIG)
        assert scenario_key(CONFIG, base) == scenario_key(CONFIG, spelled)

    def test_stable_across_runs_in_this_process(self):
        s = Scenario(policy="power-aware", cap_w=CAP,
                     node_outages=(NodeOutage(at_s=50.0, node_id=1,
                                              duration_s=100.0),))
        assert scenario_key(CONFIG, s) == scenario_key(
            CONFIG, dataclasses.replace(s))

    @pytest.mark.parametrize("hash_seed", ["0", "12345"])
    def test_invariant_across_processes_and_hash_seeds(self, hash_seed):
        """No id()/hash-seed leakage: a fresh interpreter with a
        different PYTHONHASHSEED derives the identical key."""
        code = (
            "from repro.scheduler import CampaignConfig, Scenario, NodeOutage, "
            "scenario_key\n"
            "cfg = CampaignConfig(n_nodes=8, n_jobs=20, root_seed=11, "
            "load_factor=1.1)\n"
            "s = Scenario(policy='power-aware', cap_w=9e3, seed_index=3, "
            "predictor='nameplate:1500', train_fraction=0.25, "
            "node_outages=(NodeOutage(at_s=50.0, node_id=1, duration_s=100.0),))\n"
            "print(scenario_key(cfg, s))\n"
        )
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH=src + os.pathsep + os.environ.get("PYTHONPATH", ""))
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, check=True)
        here = scenario_key(CONFIG, Scenario(
            policy="power-aware", cap_w=CAP, seed_index=3,
            predictor="nameplate:1500", train_fraction=0.25,
            node_outages=(NodeOutage(at_s=50.0, node_id=1, duration_s=100.0),)))
        assert out.stdout.strip() == here


class TestKeyDistinctness:
    @pytest.mark.parametrize("mutate", [
        dict(policy="easy"),
        dict(cap_w=CAP * 0.99),
        dict(cap_w=None, budget_w=CAP),
        dict(seed_index=1),
        dict(budget_w=CAP * 0.5),
        dict(predictor="nameplate"),
        dict(predictor="ridge", train_fraction=0.4),
        dict(train_fraction=0.1),
        dict(core="calendar"),
        dict(node_outages=(NodeOutage(at_s=10.0, node_id=0, duration_s=60.0),)),
        dict(backfill_depth=4),
        dict(backfill_depth=5),
        dict(dvfs_floor=0.5),
        dict(fairshare_decay=86400.0),
        dict(fairshare_decay=7 * 86400.0),
    ])
    def test_every_semantic_knob_moves_the_key(self, mutate):
        base = Scenario(policy="power-aware", cap_w=CAP)
        assert scenario_key(CONFIG, base) != scenario_key(
            CONFIG, dataclasses.replace(base, **mutate))

    @pytest.mark.parametrize("mutate", [
        dict(n_nodes=9), dict(n_jobs=21), dict(root_seed=12),
        dict(load_factor=1.2), dict(idle_node_power_w=250.0),
        dict(speed_exponent=0.8), dict(min_speed=0.4),
    ])
    def test_every_config_knob_moves_the_key(self, mutate):
        s = Scenario(policy="fifo")
        assert scenario_key(CONFIG, s) != scenario_key(
            dataclasses.replace(CONFIG, **mutate), s)
        assert config_key(CONFIG) != config_key(
            dataclasses.replace(CONFIG, **mutate))

    def test_randomized_200_grid_all_distinct(self):
        """Every pair of cells in a randomized 200-cell sweep keys
        distinctly (seed_index spreads the grid; random knobs ride
        along and must never collide two different indices)."""
        import random

        rng = random.Random(77)
        keys = set()
        fingerprints = set()
        for idx in range(200):
            s = Scenario(
                policy=rng.choice(("fifo", "easy", "power-aware")),
                cap_w=rng.choice((CAP, 0.8 * CAP)),
                seed_index=idx,
                train_fraction=rng.choice((0.0, 0.2)),
            )
            keys.add(scenario_key(CONFIG, s))
            fingerprints.add(scenario_fingerprint(s))
        assert len(keys) == 200
        assert len(fingerprints) == 200

    def test_outage_sets_are_semantic(self):
        """Different outage *sets* still key apart — only the listing
        order is cosmetic, never the outages themselves."""
        o1 = NodeOutage(at_s=10.0, node_id=0, duration_s=60.0)
        o2 = NodeOutage(at_s=20.0, node_id=1, duration_s=60.0)
        a = Scenario(policy="fifo", node_outages=(o1, o2))
        b = Scenario(policy="fifo", node_outages=(o1,))
        c = Scenario(policy="fifo", node_outages=(
            o1, NodeOutage(at_s=20.0, node_id=1, duration_s=61.0)))
        assert scenario_key(CONFIG, a) != scenario_key(CONFIG, b)
        assert scenario_key(CONFIG, a) != scenario_key(CONFIG, c)


@pytest.fixture(params=["memory", "disk"])
def store(request, tmp_path):
    if request.param == "memory":
        return MemoryResultStore()
    return DirectoryResultStore(tmp_path / "store")


class TestResultStores:
    def _cell(self, keep=True, scenario=None):
        scenario = scenario or Scenario(policy="easy", cap_w=CAP, seed_index=1,
                                        label="stored")
        return run_scenario(CONFIG, scenario, keep_result=keep)

    def test_miss_then_hit_accounting(self, store):
        cell = self._cell()
        key = scenario_key(CONFIG, cell.scenario)
        assert store.get(key) is None
        store.put(key, cell)
        assert store.get(key) is not None
        assert (store.hits, store.misses) == (1, 1)
        assert key in store and len(store) == 1
        assert list(store.keys()) == [key]

    def test_round_trip_metrics_only(self, store):
        cell = self._cell(keep=False)
        key = scenario_key(CONFIG, cell.scenario)
        store.put(key, cell)
        loaded = store.get(key)
        assert loaded.digest == cell.digest
        assert loaded.qos == cell.qos
        assert loaded.scenario == cell.scenario
        assert loaded.result is None

    def test_round_trip_full_payload_field_by_field(self, store):
        cell = self._cell(keep=True)
        key = scenario_key(CONFIG, cell.scenario)
        store.put(key, cell)
        loaded = store.get(key)
        a, b = cell.result, loaded.result
        assert result_digest(b) == cell.digest
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records):
            assert ra.job == rb.job
            for field in ("state", "start_time_s", "end_time_s", "nodes",
                          "energy_j", "predicted_power_w", "stretch",
                          "requeues", "elapsed_running_s", "work_progressed_s"):
                assert getattr(ra, field) == getattr(rb, field), field
        assert np.array_equal(a.power_trace.times_s, b.power_trace.times_s)
        assert np.array_equal(a.power_trace.power_w, b.power_trace.power_w)
        for field in ("makespan_s", "total_energy_j", "cap_w",
                      "overdemand_s", "utilization", "n_requeues"):
            assert getattr(a, field) == getattr(b, field), field
        # Rebuilt results compute QoS from their own records.
        assert b.mean_wait_s() == a.mean_wait_s()

    def test_payload_round_trips_outages_and_uncapped(self, store):
        scenario = Scenario(
            policy="fifo",
            node_outages=(NodeOutage(at_s=500.0, node_id=2, duration_s=900.0),))
        cell = self._cell(keep=True, scenario=scenario)
        key = scenario_key(CONFIG, scenario)
        store.put(key, cell)
        loaded = store.get(key)
        assert loaded.result.cap_w is None
        assert result_digest(loaded.result) == cell.digest
        assert loaded.scenario.node_outages == scenario.node_outages

    def test_metrics_only_put_never_downgrades_payload(self, store):
        cell = self._cell(keep=True)
        key = scenario_key(CONFIG, cell.scenario)
        store.put(key, cell)
        store.put(key, dataclasses.replace(cell, result=None))
        assert store.get(key).result is not None

    def test_metrics_only_put_with_conflicting_digest_raises(self, store):
        cell = self._cell(keep=True)
        key = scenario_key(CONFIG, cell.scenario)
        store.put(key, cell)
        bad = dataclasses.replace(cell, result=None, digest="0" * 64)
        with pytest.raises(ValueError, match="conflicting digests"):
            store.put(key, bad)


class TestDirectoryStore:
    def test_verify_refuses_tampered_payload(self, tmp_path):
        store = DirectoryResultStore(tmp_path / "store")
        cell = run_scenario(CONFIG, Scenario(policy="fifo"), keep_result=True)
        key = scenario_key(CONFIG, cell.scenario)
        store.put(key, cell)
        # Swap in a payload from a different run, keeping the JSON.
        other = run_scenario(CONFIG, Scenario(policy="easy", cap_w=CAP),
                             keep_result=True)
        donor = DirectoryResultStore(tmp_path / "donor")
        donor.put("k", other)
        (tmp_path / "store" / f"{key}.npz").write_bytes(
            (tmp_path / "donor" / "k.npz").read_bytes())
        with pytest.raises(ValueError, match="corrupt store entry"):
            store.get(key)
        # verify=False serves it anyway (caller opted out).
        assert DirectoryResultStore(tmp_path / "store", verify=False).get(key)

    def test_unreadable_json_is_a_miss(self, tmp_path):
        store = DirectoryResultStore(tmp_path / "store")
        (tmp_path / "store" / "deadbeef.json").write_text("{not json")
        assert store.get("deadbeef") is None

    def test_persists_across_instances(self, tmp_path):
        cell = run_scenario(CONFIG, Scenario(policy="fifo"), keep_result=False)
        key = scenario_key(CONFIG, cell.scenario)
        DirectoryResultStore(tmp_path / "store").put(key, cell)
        again = DirectoryResultStore(tmp_path / "store")
        assert again.get(key).digest == cell.digest


class TestCheckpoint:
    def test_bind_creates_then_validates_manifest(self, tmp_path):
        grid = [Scenario(policy="fifo"), Scenario(policy="easy", cap_w=CAP)]
        cp = CampaignCheckpoint(tmp_path / "cp")
        assert not cp.has_manifest()
        keys = cp.bind(CONFIG, grid)
        assert cp.has_manifest()
        assert keys == [scenario_key(CONFIG, s) for s in grid]
        # Re-binding the same campaign is fine; a different one raises.
        CampaignCheckpoint(tmp_path / "cp").bind(CONFIG, grid)
        with pytest.raises(ValueError, match="different campaign"):
            CampaignCheckpoint(tmp_path / "cp").bind(CONFIG, grid[:1])
        with pytest.raises(ValueError, match="different campaign"):
            CampaignCheckpoint(tmp_path / "cp").bind(
                dataclasses.replace(CONFIG, root_seed=99), grid)

    def test_record_is_idempotent(self, tmp_path):
        cp = CampaignCheckpoint(tmp_path / "cp")
        cell = run_scenario(CONFIG, Scenario(policy="fifo"))
        key = scenario_key(CONFIG, cell.scenario)
        cp.record(key, cell)
        cp.record(key, cell)
        assert len(cp) == 1
        assert cp.completed_keys() == {key}
