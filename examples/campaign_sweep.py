#!/usr/bin/env python3
"""Campaign sweep: a policy × cap × seed grid on the parallel runner.

Fans 12 scheduling scenarios (3 policies × 2 power caps × 2 seeds)
across a deterministic multiprocessing pool, merges the results in
submission order, and shows that the merged campaign digest is
identical to a serial run — same grid, same answer, any pool size.

Run:  python examples/campaign_sweep.py
"""

import os
import time

from repro.scheduler import CampaignConfig, Scenario, campaign_digest, run_campaign

BUDGET_W = 20e3


def main() -> None:
    # 1. One workload/machine shape for the whole campaign; each
    #    seed_index derives its own job stream from the root seed, and
    #    every policy/cap cell at the same seed_index sees the *same*
    #    stream (paired comparisons).
    config = CampaignConfig(n_nodes=16, n_jobs=80, root_seed=2026, load_factor=1.1)
    grid = [
        Scenario(policy=policy, cap_w=cap, budget_w=BUDGET_W if policy == "power-aware" else None,
                 seed_index=seed, label=f"{policy}/{'cap' if cap else 'uncapped'}/s{seed}")
        for policy in ("fifo", "easy", "power-aware")
        for cap in (None, BUDGET_W)
        for seed in (0, 1)
    ]
    print(f"grid: {len(grid)} scenarios on {config.n_nodes} nodes, "
          f"{config.n_jobs} jobs each")

    # 2. Serial run (the determinism oracle), then the pool.
    t0 = time.perf_counter()
    serial = run_campaign(config, grid, processes=1)
    t_serial = time.perf_counter() - t0
    n_proc = min(4, os.cpu_count() or 1)
    t0 = time.perf_counter()
    pooled = run_campaign(config, grid, processes=n_proc)
    t_pool = time.perf_counter() - t0

    # 3. The merged results are bitwise the same.
    d_serial, d_pool = campaign_digest(serial), campaign_digest(pooled)
    assert d_serial == d_pool, "pool size changed the campaign results"
    print(f"serial: {t_serial:.2f} s | pool({n_proc}): {t_pool:.2f} s | "
          f"digest {d_serial[:16]}… (identical)")

    # 4. QoS table, seed-averaged per cell.
    print(f"\n{'scenario':<24}{'peak kW':>9}{'wait min':>10}{'stretch':>9}")
    for r in pooled:
        q = r.qos
        print(f"{r.scenario.label:<24}{q['peak_power_w'] / 1e3:>9.1f}"
              f"{q['mean_wait_s'] / 60:>10.1f}{q['mean_stretch']:>9.3f}")

    # 5. The reactive-capped cells stretch running jobs; the proactive
    #    dispatcher reorders instead, so its jobs run unstretched (its
    #    uncapped cells may still spike when a job too hungry for the
    #    envelope is admitted through the over-budget escape hatch —
    #    that's what the reactive backstop is for).
    reactive = [r for r in pooled if r.scenario.policy == "easy" and r.scenario.cap_w]
    proactive = [r for r in pooled if r.scenario.policy == "power-aware" and not r.scenario.cap_w]
    print(f"\nreactive stretch {max(r.qos['mean_stretch'] for r in reactive):.3f} vs "
          f"proactive {max(r.qos['mean_stretch'] for r in proactive):.3f}")


if __name__ == "__main__":
    main()
