#!/usr/bin/env python3
"""Quickstart: the whole D.A.V.I.D.E. loop in ~40 lines of API.

Builds the integrated system (cluster + gateways + MQTT + TSDB +
accounting + predictor + power-aware scheduler), runs a synthetic
campaign under a 60 kW envelope, and prints what every Fig.-4 stage
produced.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import ClusterBuilder
from repro.scheduler import make_workload


def main() -> None:
    # 1. The machine: 45 Garrison nodes in 3 OpenRacks, one energy
    #    gateway per node, an MQTT broker, a TSDB collector agent.
    system = ClusterBuilder(seed=0).build_system()
    print(f"cluster: {system.cluster.n_nodes} nodes, "
          f"{system.cluster.nameplate_flops / 1e15:.2f} PFlops nameplate")

    # 2. A synthetic production workload (the CINECA-trace stand-in),
    #    built by registry name — "davide" is the four-application mix.
    jobs = make_workload(
        "davide",
        rng=np.random.default_rng(0),
        n_jobs=150, cluster_nodes=45, load_factor=1.1,
    ).generate()
    print(f"workload: {len(jobs)} jobs from "
          f"{len({j.user for j in jobs})} users, apps "
          f"{sorted({j.app for j in jobs})}")

    # 3. The campaign: monitored history -> predictor training ->
    #    proactive power-capped production with the reactive backstop.
    budget_w = 60e3
    report = system.run_campaign(jobs, power_budget_w=budget_w)

    print("\n--- monitoring (EG -> MQTT -> TSDB) ---")
    print(f"messages published: {report.mqtt_published}")
    print(f"TSDB samples:       {report.tsdb_samples}")

    print("\n--- energy accounting (EA) ---")
    print(f"billed energy: {report.total_billed_energy_j / 3.6e6:.1f} kWh "
          f"across {len(report.bills)} jobs")
    top = sorted(report.statements.values(), key=lambda s: s.total_cost, reverse=True)[:3]
    for s in top:
        print(f"  {s.user}: {s.n_jobs} jobs, {s.total_energy_kwh:.1f} kWh, "
              f"EUR {s.total_cost:.2f}")

    print("\n--- power prediction (EP) ---")
    print(f"ridge predictor MAPE on unseen jobs: {report.predictor_score.mape * 100:.1f}%")

    print(f"\n--- power-capped production (budget {budget_w / 1e3:.0f} kW) ---")
    for key, value in report.qos_summary().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")


if __name__ == "__main__":
    main()
