#!/usr/bin/env python3
"""Walking through the D.A.V.I.D.E. cooling design (Sections II-C/G/I).

Computes the rack heat split between cold plates and the fan wall, sizes
the liquid loop at the paper's design point (30 L/min, 35 degC facility
water), verifies the dew-point and temperature constraints, shows why
air-cooled nodes throttle where liquid-cooled nodes do not, and
quantifies the free-cooling benefit of hot-water operation.

Run:  python examples/cooling_design.py
"""

import numpy as np

from repro.cooling import (
    AIR_COOLED_GPU,
    LIQUID_COOLED_GPU,
    DatacenterCooling,
    HeatExchanger,
    LiquidLoop,
    ThrottleGovernor,
    dew_point_c,
    heat_split_for_rack,
)
from repro.cluster import ClusterBuilder


def main() -> None:
    # A full-load rack.
    rack = ClusterBuilder().build_rack()
    for n in rack.nodes:
        n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
    split = heat_split_for_rack(rack)
    print(f"rack heat: {split.total_w / 1e3:.1f} kW total -> "
          f"{split.liquid_fraction * 100:.0f}% liquid / "
          f"{(1 - split.liquid_fraction) * 100:.0f}% air "
          f"(paper: 75-80% / 20-25%)")

    # The liquid loop at the design point.
    loop = LiquidLoop(HeatExchanger(ua_w_per_k=4000.0), secondary_flow_lpm=30.0)
    op = loop.operating_point(heat_w=split.liquid_w, facility_inlet_c=35.0)
    print(f"\nliquid loop @ 30 L/min, 35 degC facility water:")
    print(f"  secondary supply/return: {op['secondary_supply_c']:.1f} / "
          f"{op['secondary_return_c']:.1f} degC")
    print(f"  facility outlet:         {op['facility_outlet_c']:.1f} degC (max 55)")
    dew = dew_point_c(25.0, 0.5)
    print(f"  dew point @ 25 degC/50%RH: {dew:.1f} degC "
          f"(supply must stay above {dew + 5:.1f})")
    violations = loop.check_constraints(op)
    print(f"  constraints: {'all met' if not violations else violations}")

    # Throttling: liquid vs air across sink temperatures.
    gov = ThrottleGovernor()
    print("\nsustained P100 performance (300 W demand, 20 min):")
    print(f"  {'sink degC':>10s} {'liquid':>8s} {'air':>8s}")
    for temp in (30.0, 36.0, 42.0, 45.0):
        liq = gov.run(LIQUID_COOLED_GPU(temp), 300.0, duration_s=1200.0)
        air = gov.run(AIR_COOLED_GPU(temp), 300.0, duration_s=1200.0)
        print(f"  {temp:10.0f} {liq.mean_performance_fraction:8.3f} "
              f"{air.mean_performance_fraction:8.3f}")

    # Free cooling: hot water pays off at the facility level.
    rng = np.random.default_rng(0)
    year = rng.normal(14.0, 8.0, 8760)
    print("\nfree-cooling hours (temperate climate) and PUE:")
    for supply in (18.0, 35.0, 40.0):
        dc = DatacenterCooling(liquid_supply_c=supply)
        frac = dc.free_cooling_hours_fraction(year)["liquid"]
        pue = dc.pue(90e3, split, outdoor_c=14.0)
        print(f"  {supply:4.0f} degC water: {frac * 100:5.1f}% free cooling, "
              f"PUE {pue:.3f} at 14 degC outdoors")


if __name__ == "__main__":
    main()
