#!/usr/bin/env python3
"""The conclusion's claim, quantified: the road from D.A.V.I.D.E. to exascale.

"This system is the building block for the forthcoming exascale
supercomputer based on a class of system where Energy Aware management
is mandatory."  This example puts numbers behind that sentence: what an
exaflop built from Garrison-class nodes costs in power and money across
efficiency scenarios, and how much of the bill energy-aware operation
(power capping to the free-cooling envelope, node shaping) claws back.

Run:  python examples/exascale_roadmap.py
"""

from repro.analysis import TcoModel, project_exascale
from repro.cluster import ClusterBuilder


def main() -> None:
    # The building block the projections scale from: the pilot machine.
    pilot = ClusterBuilder().build_hardware()
    print(f"building block: {pilot.spec.name} — {pilot.n_nodes} nodes, "
          f"{pilot.nameplate_flops / 1e15:.2f} PFlops nameplate, "
          f"{pilot.energy_efficiency_flops_per_w() / 1e9:.1f} GFlops/W")
    print("\nExascale projections from the Garrison building block")
    print("(1 EFlops sustained target, 75% Linpack efficiency)\n")
    header = f"{'scenario':30s} {'nodes':>8s} {'power':>9s} {'GF/W':>6s} {'20 MW?':>7s}"
    print(header)
    print("-" * len(header))
    for p in project_exascale():
        print(f"{p.scenario:30s} {p.n_nodes:8d} {p.system_power_mw:7.1f}MW "
              f"{p.gflops_per_w:6.1f} {'yes' if p.within_20mw_target else 'no':>7s}")

    # TCO: why the power column is the one that matters.
    print("\nTCO over 5 years for the baseline-scenario machine:")
    baseline = project_exascale()[0]
    tco = TcoModel(
        capex=baseline.n_nodes * 65_000.0,       # ~EUR 65k per dense GPU node
        it_power_w=baseline.system_power_mw * 1e6,
        pue=1.1,                                  # hot-water liquid cooling
        electricity_price_per_kwh=0.25,
    )
    print(f"  capex:              EUR {tco.capex / 1e6:8.1f} M")
    print(f"  energy (5 y):       EUR {tco.lifetime_energy_cost / 1e6:8.1f} M")
    print(f"  maintenance (5 y):  EUR {tco.lifetime_maintenance_cost / 1e6:8.1f} M")
    print(f"  energy share of TCO: {tco.energy_fraction * 100:.0f}%")

    # What energy-aware operation is worth at that scale.
    for saving in (0.05, 0.10):
        saved = tco.lifetime_energy_cost * saving
        print(f"  a {saving * 100:.0f}% energy saving (capping + shaping + free "
              f"cooling) is worth EUR {saved / 1e6:.0f} M over the lifetime")


if __name__ == "__main__":
    main()
