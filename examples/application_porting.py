#!/usr/bin/env python3
"""The Section-IV co-design study: porting four codes to the GPU node.

For Quantum ESPRESSO, NEMO, SPECFEM3D and BQCD, runs the phase model on
the three node configurations (CPU-only, GPU over PCIe, GPU over
NVLink), prints the time/energy wins, and demonstrates the
energy-proportionality API: shaping the node around a job that needs
only part of it.

Run:  python examples/application_porting.py
"""

from repro.apps import ALL_APPS, ExecutionPlatform
from repro.cluster import ClusterBuilder
from repro.energyapi import ComponentConfig, NodeEnergyApi, TradeoffRecorder


def porting_study() -> None:
    platforms = {
        "cpu-only": ExecutionPlatform.cpu_only(),
        "gpu-pcie": ExecutionPlatform.gpu_pcie(),
        "gpu-nvlink": ExecutionPlatform.gpu_nvlink(),
    }
    print(f"{'app':10s} {'platform':11s} {'TTS [s]':>9s} {'ETS [kJ]':>9s} "
          f"{'mean W':>7s} {'comm %':>7s}")
    print("-" * 58)
    for app_name, factory in ALL_APPS.items():
        app = factory(scale=1.0, n_iterations=20)
        for plat_name, platform in platforms.items():
            r = platform.run(app, n_nodes=4)
            print(f"{app_name:10s} {plat_name:11s} {r.time_to_solution_s:9.2f} "
                  f"{r.energy_to_solution_j / 1e3:9.1f} {r.mean_power_w:7.0f} "
                  f"{r.comm_fraction() * 100:6.1f}%")
        print()


def nvlink_focus() -> None:
    print("NVLink benefit (PCIe time / NVLink time):")
    for app_name, factory in ALL_APPS.items():
        app = factory(scale=1.0, n_iterations=20)
        pcie = ExecutionPlatform.gpu_pcie().run(app, n_nodes=4)
        nvl = ExecutionPlatform.gpu_nvlink().run(app, n_nodes=4)
        gain = pcie.time_to_solution_s / nvl.time_to_solution_s
        note = ""
        if app_name == "qe":
            note = "  <- FFT pair exchange localized on the GPU gang"
        if app_name == "bqcd":
            note = "  <- QUDA peer-to-peer over NVLink"
        if app_name == "nemo":
            note = "  <- bandwidth-bound, no device-peer traffic"
        print(f"  {app_name:10s} {gain:5.2f}x{note}")
    print()


def node_shaping() -> None:
    print("energy-proportionality API: shaping the node per job class")
    recorder = TradeoffRecorder()
    shapes = {
        "full node": ComponentConfig(),
        "2 GPUs, 4 cores": ComponentConfig(gpus_needed=2, active_cores_per_cpu=4),
        "CPU-only": ComponentConfig(gpus_needed=0),
    }
    builder = ClusterBuilder(n_nodes=1)
    for label, config in shapes.items():
        node = builder.build_nodes()[0]
        api = NodeEnergyApi(node)
        node.set_utilization(cpu=0.3, gpu=1.0 if "GPU" not in label else 0.5,
                             memory_intensity=0.4)
        api.apply(config)
        print(f"  {label:18s} -> {node.power_w():6.0f} W  (calls: {api.log.calls})")


if __name__ == "__main__":
    porting_study()
    nvlink_focus()
    node_shaping()
