#!/usr/bin/env python3
"""Observability tour: watch the management plane watch itself.

One builder call — ``.with_observability()`` — threads a shared metrics
registry and a sim-clock tracer through the whole Fig.-4 path: gateway
sampling ticks, batched MQTT publishes, broker dispatch, scheduler
decisions, cap actuations, and invariant checks.  This example runs a
faulted 32-node drill with instrumentation on and shows the three ways
to read it back:

* ``ops_report()`` — the operator's one-page summary (queue depths,
  publish latencies, cap actuations, requeue counts, check timings);
* the Prometheus text exposition and JSON-lines exports;
* the span log, for following one broker outage through recovery.

Instrumentation is a side store: the same drill replayed with
observability off produces a byte-identical telemetry event log.

Run:  python examples/observability_tour.py
"""

from repro.cluster import ClusterBuilder
from repro.faults import FaultKind, FaultSpec

SEED = 2026

CAMPAIGN = [
    FaultSpec(FaultKind.NODE_CRASH, at_s=22.0, duration_s=30.0, target=4),
    FaultSpec(FaultKind.BROKER_OUTAGE, at_s=45.0, duration_s=12.0),
    FaultSpec(FaultKind.SENSOR_SPIKE, at_s=70.0, duration_s=8.0, target=2,
              magnitude=2000.0),
]


def build(observability: bool):
    budget_w = 875.0 * 32
    return (ClusterBuilder(n_nodes=32, seed=SEED)
            .with_gateways(period_s=1.0, batched=True)
            .with_scheduler(cap_w=budget_w)
            # Size the rack shelf to the budget (one PSU loss still covers it).
            .with_faults(shelf_psu_rating_w=budget_w * 3.0 / 14.0)
            .with_observability(enabled=observability)
            .build_drill())


def main() -> None:
    drill = build(observability=True)
    report = drill.run(CAMPAIGN, extra_random_faults=2)
    ops = drill.ops_report()

    print("--- ops report ---")
    tele, sched, cap = ops["telemetry"], ops["scheduler"], ops["capping"]
    print(f"  telemetry: {int(tele['samples_published'])} samples published, "
          f"{int(tele['publish_failures'])} publish failures, "
          f"backlog peak {int(tele['backlog_peak'])} samples")
    print(f"  publish latency: mean {tele['publish_latency']['mean_s'] * 1e3:.2f} ms "
          f"over {tele['publish_latency']['count']} batches")
    print(f"  broker: {int(ops['broker']['published'])} publishes, "
          f"{int(ops['broker']['rejected'])} rejected during the outage")
    print(f"  scheduler: {int(sched['jobs_started'])} starts, "
          f"{int(sched['jobs_requeued'])} crash-requeues")
    print(f"  capping: {int(cap['actuations'])} actuations, "
          f"{cap['violation_seconds']:.1f} cap-violation seconds")
    print(f"  invariants: {int(ops['invariants']['checks'])} checks, "
          f"{int(ops['invariants']['violations'])} violations, "
          f"{ops['invariants']['check_time_s'] * 1e3:.1f} ms in checks")
    print(f"  kernel: {ops['kernel']['events_dispatched']} events over "
          f"{ops['kernel']['sim_time_s']:.0f} simulated seconds")

    print("\n--- prometheus exposition (excerpt) ---")
    for line in drill.obs.prometheus_text().splitlines():
        if line.startswith(("telemetry_samples_total", "mqtt_messages_published",
                            "scheduler_jobs", "cap_actuations")):
            print(f"  {line}")

    print("\n--- tracing one broker outage ---")
    recoveries = drill.obs.tracer.named("gateway.recover")
    for span in recoveries:
        print(f"  gateway.recover: t={span.t_start_s:.1f}s -> {span.t_end_s:.1f}s "
              f"({span.duration_s:.1f}s to reconnect)")
    ticks = drill.obs.tracer.named("gateway.tick")
    publishes = drill.obs.tracer.named("mqtt.publish")
    print(f"  plus {len(ticks)} gateway.tick spans, "
          f"{len(publishes)} mqtt.publish child spans")

    # The contract: instrumentation never changes what the cluster does.
    baseline = build(observability=False).run(CAMPAIGN, extra_random_faults=2)
    assert baseline.log.digest() == report.log.digest(), "observability changed the run!"
    print("\nobservability off replay: byte-identical event log — pure side store.")

    assert report.ok, "invariant violated — see checker output"
    assert int(ops["scheduler"]["jobs_started"]) == report.log.counts().get("job_start", 0)


if __name__ == "__main__":
    main()
