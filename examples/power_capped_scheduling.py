#!/usr/bin/env python3
"""Operating a power-capped supercomputer at high QoS.

The paper's Section III-A2 scenario: the datacenter imposes a power
envelope; compare four ways to live under it —

* ignore it (uncapped EASY backfill): best QoS, busts the envelope;
* reactive-only (RAPL-style trimming of running jobs): envelope holds,
  every job under the cap runs slower;
* proactive-only (the paper's predictive dispatcher): envelope holds by
  reordering admissions, jobs run at full speed;
* combined: the production configuration.

Run:  python examples/power_capped_scheduling.py [budget_kw]
"""

import sys

import numpy as np

from repro.cluster import ClusterBuilder
from repro.prediction import JobPowerModel, chronological_split
from repro.scheduler import make_policy, make_workload

N_NODES = 45


def main() -> None:
    budget_w = float(sys.argv[1]) * 1e3 if len(sys.argv) > 1 else 52e3
    jobs = make_workload(
        "davide",
        rng=np.random.default_rng(7),
        n_jobs=250, cluster_nodes=N_NODES, load_factor=1.15,
    ).generate()

    # Train a predictor on the first 40% of the stream (the history the
    # monitoring stack would have recorded), schedule the rest.
    history, production = chronological_split(jobs, 0.4)
    model = JobPowerModel.fit_ridge(history)
    print(f"workload: {len(production)} production jobs on {N_NODES} nodes; "
          f"budget {budget_w / 1e3:.0f} kW")
    print(f"predictor trained on {len(history)} historical jobs\n")

    policies = {
        "uncapped EASY": (make_policy("easy"), None),
        "reactive only": (make_policy("easy"), budget_w),
        "proactive only": (
            make_policy("power-aware", cap_w=budget_w, predictor=model), None),
        "combined": (
            make_policy("power-aware", cap_w=budget_w, predictor=model), budget_w),
    }

    header = (f"{'policy':16s} {'peak kW':>8s} {'mean wait':>10s} "
              f"{'slowdown':>9s} {'stretch':>8s} {'energy MWh':>11s}")
    print(header)
    print("-" * len(header))
    for name, (policy, cap) in policies.items():
        sim = ClusterBuilder(n_nodes=N_NODES).with_scheduler(policy, cap_w=cap).build_simulator()
        result = sim.run(production)
        print(f"{name:16s} {result.peak_power_w() / 1e3:8.1f} "
              f"{result.mean_wait_s() / 60:8.1f} m "
              f"{result.mean_bounded_slowdown():9.2f} "
              f"{result.mean_stretch():8.3f} "
              f"{result.total_energy_j / 3.6e9:11.2f}")

    print("\nreading: 'stretch' is cap-induced job slowdown (1.0 = full-speed");
    print("runs); the proactive dispatcher holds the envelope purely by job")
    print("ordering, the paper's headline scheduling claim.")


if __name__ == "__main__":
    main()
