#!/usr/bin/env python3
"""The monitoring/management loop as live, asynchronous agents.

Everything else in this repo drives the components through batch APIs;
this example runs them the way the deployed system does — as independent
processes on the discrete-event kernel that interact *only through the
MQTT bus*:

* one :class:`GatewayDaemon` per node samples its busbar every 100 ms
  and publishes;
* one :class:`CappingAgent` per node subscribes to its own node's
  stream and actuates the firmware power cap when the set point is
  exceeded (with a realistic actuation delay);
* a workload process steps nodes through busy/idle phases.

Watch the caps engage as load arrives and release as it drains.

Run:  python examples/live_agents.py
"""

import numpy as np

from repro.hardware import ComputeNode
from repro.monitoring import CappingAgent, GatewayDaemon, MqttBroker
from repro.sim import Environment

N_NODES = 6
SETPOINT_W = 1500.0


def main() -> None:
    env = Environment()
    broker = MqttBroker(clock=lambda: env.now)
    nodes = [ComputeNode(node_id=i) for i in range(N_NODES)]
    daemons = [
        GatewayDaemon(env, n, broker, period_s=0.1, rng=np.random.default_rng(i))
        for i, n in enumerate(nodes)
    ]
    agents = [
        CappingAgent(env, n, broker, setpoint_w=SETPOINT_W, actuation_delay_s=0.05)
        for n in nodes
    ]

    # A log subscriber so we can narrate what crossed the bus.
    logbook = broker.connect("logbook")
    logbook.subscribe("davide/+/power/node")

    def workload():
        # Phase 1: half the nodes go flat out.
        for n in nodes[: N_NODES // 2]:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        yield env.timeout(3.0)
        # Phase 2: everyone busy.
        for n in nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        yield env.timeout(3.0)
        # Phase 3: drain.
        for n in nodes:
            n.idle()
        yield env.timeout(3.0)

    env.process(workload(), name="workload")

    def reporter():
        while True:
            capped = sum(a.capped for a in agents)
            total = sum(n.power_w() for n in nodes)
            print(f"t={env.now:5.1f}s  fleet power {total:7.0f} W  "
                  f"capped nodes {capped}/{N_NODES}")
            yield env.timeout(1.0)

    env.process(reporter(), name="reporter")
    env.run(until=9.5)

    print(f"\nbus traffic: {broker.published_count} samples published, "
          f"{len(logbook.inbox)} observed by the logbook")
    print(f"actuations per agent: {[a.actuations for a in agents]}")
    for node, agent in zip(nodes, agents):
        state = "capped" if agent.capped else "uncapped"
        print(f"  node{node.node_id}: {node.power_w():6.0f} W, {state}")
    print("\nnote: agents never call each other — every interaction rode "
          "the MQTT bus, as in the deployed system.")


if __name__ == "__main__":
    main()
