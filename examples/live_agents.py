#!/usr/bin/env python3
"""The monitoring/management loop as live, asynchronous agents.

Everything else in this repo drives the components through batch APIs;
this example runs them the way the deployed system does — as independent
processes on the discrete-event kernel that interact *only through the
MQTT bus*:

* one gateway per node samples its busbar every 100 ms and publishes
  (the :class:`~repro.cluster.ClusterBuilder` wires them up as a
  :class:`~repro.monitoring.TelemetryPlane`);
* one :class:`CappingAgent` per node subscribes to its own node's
  stream and actuates the firmware power cap when the set point is
  exceeded (with a realistic actuation delay);
* a workload process steps nodes through busy/idle phases.

Watch the caps engage as load arrives and release as it drains.  Pass
``--batched`` to sample all nodes through the vectorized
:class:`~repro.monitoring.GatewayArray` hot path instead — same bus
traffic, one kernel event per tick.

Run:  python examples/live_agents.py [--batched]
"""

import sys

from repro.cluster import ClusterBuilder

N_NODES = 6
SETPOINT_W = 1500.0


def main(batched: bool = False) -> None:
    live = (
        ClusterBuilder(n_nodes=N_NODES)
        .with_gateways(period_s=0.1, batched=batched)
        .with_capping(cap_w=SETPOINT_W, actuation_delay_s=0.05)
        .build_live()
    )
    env, nodes = live.env, live.nodes

    # A log subscriber so we can narrate what crossed the bus.
    logbook = live.connect("logbook")
    logbook.subscribe(live.telemetry.topic_filter)

    def workload():
        # Phase 1: half the nodes go flat out.
        for n in nodes[: N_NODES // 2]:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        yield env.timeout(3.0)
        # Phase 2: everyone busy.
        for n in nodes:
            n.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
        yield env.timeout(3.0)
        # Phase 3: drain.
        for n in nodes:
            n.idle()
        yield env.timeout(3.0)

    env.process(workload(), name="workload")

    def reporter():
        while True:
            print(f"t={env.now:5.1f}s  fleet power {live.total_power_w:7.0f} W  "
                  f"capped nodes {live.capped_nodes}/{N_NODES}")
            yield env.timeout(1.0)

    env.process(reporter(), name="reporter")
    live.run(until=9.5)

    print(f"\nbus traffic: {live.broker.published_count} messages published, "
          f"{len(logbook.inbox)} observed by the logbook "
          f"({live.telemetry.samples_published} node samples)")
    print(f"actuations per agent: {[a.actuations for a in live.agents]}")
    for node, agent in zip(nodes, live.agents):
        state = "capped" if agent.capped else "uncapped"
        print(f"  node{node.node_id}: {node.power_w():6.0f} W, {state}")
    print("\nnote: agents never call each other — every interaction rode "
          "the MQTT bus, as in the deployed system.")


if __name__ == "__main__":
    main(batched="--batched" in sys.argv[1:])
