#!/usr/bin/env python3
"""The Section-I deployment roadmap, executed end to end.

"The first sample nodes will be available from mid March 2017 ... All
the nodes will be assembled and tested using the E4 standard burn-in
suite ... The whole system will be fully configured in April 2017 in
the E4 facility in order to perform baseline performance, power and
energy benchmarks using air cooling.  It will be converted to liquid
cooling starting from June 2017 then installed at CINECA premises."

This example walks the pilot through exactly those stages:

1. burn-in acceptance of all 45 Garrison nodes;
2. the air-cooled baseline at the E4 facility — quantifying the
   throttling penalty the interim configuration pays;
3. conversion to direct liquid cooling — full sustained performance and
   the production heat split;
4. production acceptance at CINECA: envelope, per-rack feeds, efficiency.

Run:  python examples/pilot_deployment.py
"""

from repro.cooling import (
    AIR_COOLED_GPU,
    LIQUID_COOLED_GPU,
    ThrottleGovernor,
    heat_split_for_rack,
)
from repro.cluster import ClusterBuilder
from repro.hardware import BurnInSuite, Cluster, RackManagementController


def stage1_burn_in(cluster: Cluster) -> None:
    print("stage 1 — E4 burn-in of all nodes")
    suite = BurnInSuite()
    failures = 0
    for node in cluster.nodes:
        report = suite.run(node)
        if not report.passed:
            failures += 1
            for f in report.failures():
                print(f"  node{node.node_id}: FAIL {f.name}: {f.detail}")
    print(f"  {cluster.n_nodes - failures}/{cluster.n_nodes} nodes accepted\n")


def stage2_air_baseline() -> float:
    print("stage 2 — air-cooled baseline at the E4 facility (April 2017)")
    gov = ThrottleGovernor()
    result = gov.run(AIR_COOLED_GPU(28.0), demand_power_w=300.0, duration_s=1800.0)
    print(f"  P100 sustained performance on air: {result.mean_performance_fraction:.3f}")
    print(f"  time spent throttled: {result.throttled_fraction * 100:.0f}%")
    print("  (this is the penalty the interim air configuration accepts)\n")
    return result.mean_performance_fraction


def stage3_liquid_conversion(cluster: Cluster, air_perf: float) -> None:
    print("stage 3 — conversion to direct liquid cooling (June 2017)")
    gov = ThrottleGovernor()
    result = gov.run(LIQUID_COOLED_GPU(35.0), demand_power_w=300.0, duration_s=1800.0)
    print(f"  P100 sustained performance on 35 degC water: "
          f"{result.mean_performance_fraction:.3f} "
          f"(+{(result.mean_performance_fraction / air_perf - 1) * 100:.0f}% vs air)")
    for rack in cluster.racks:
        for node in rack.nodes:
            node.set_utilization(cpu=1.0, gpu=1.0, memory_intensity=1.0)
    split = heat_split_for_rack(cluster.racks[0])
    print(f"  rack heat split: {split.liquid_fraction * 100:.0f}% liquid / "
          f"{(1 - split.liquid_fraction) * 100:.0f}% air (paper: 75-80/20-25)\n")


def stage4_production_acceptance(cluster: Cluster) -> None:
    print("stage 4 — production acceptance at CINECA")
    rmcs = [RackManagementController(rack) for rack in cluster.racks]
    for rmc in rmcs:
        rmc.optimize_fans()
    power = cluster.facility_power_w()
    print(f"  system peak:    {cluster.nameplate_flops / 1e15:.3f} PFlops (target 1 PFlops)")
    print(f"  system power:   {power / 1e3:.1f} kW (envelope < 100 kW)")
    for rmc in rmcs:
        h = rmc.health_summary()
        print(f"  rack {h['rack_id']}: {h['facility_power_w'] / 1e3:5.1f} kW "
              f"(feed OK: {h['within_feed']}), fans {h['fan_fraction']:.2f}, "
              f"exhaust {h['exhaust_temp_c']:.1f} degC")
    eff = cluster.energy_efficiency_flops_per_w() / 1e9
    print(f"  efficiency:     {eff:.2f} GFlops/W (the ~10 GF/W design point)")
    verdict = power < 100e3 and all(r.health_summary()["within_feed"] for r in rmcs)
    print(f"\n  ACCEPTANCE: {'PASS' if verdict else 'FAIL'}")


def main() -> None:
    cluster = ClusterBuilder().build_hardware()
    stage1_burn_in(cluster)
    air_perf = stage2_air_baseline()
    stage3_liquid_conversion(cluster, air_perf)
    stage4_production_acceptance(cluster)


if __name__ == "__main__":
    main()
