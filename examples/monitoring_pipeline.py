#!/usr/bin/env python3
"""Fine-grain power monitoring of a real computation.

Runs an *actual* NumPy workload with the phase structure of BQCD's CG
solver (compute bursts alternating with 'communication' waits),
instruments it with region markers, synthesises the node's ground-truth
power from the instrumented phases, pushes it through the full energy
gateway chain (shunt sensor -> 12-bit SAR ADC @ 800 kS/s -> x16 HW
average -> MQTT), and compares what the EG reports against an
IPMI-class poller — then profiles energy per region.

Run:  python examples/monitoring_pipeline.py
"""

import numpy as np

from repro.apps import cg_solve
from repro.cluster import ClusterBuilder
from repro.energyapi import Instrumentation
from repro.monitoring import EnergyGateway, IpmiMonitor, MqttBroker
from repro.power import PowerTrace
from repro.telemetry import PowerProfiler

COMPUTE_W = 1820.0   # node power while the GPUs grind the CG
WAIT_W = 740.0       # node power during halo-wait phases


def run_instrumented_solver() -> Instrumentation:
    """A CG solve split into bursts, with a simulated clock and markers."""
    clock = {"t": 0.0}
    instr = Instrumentation(clock=lambda: clock["t"])
    rng = np.random.default_rng(0)
    n = 400
    A = rng.normal(size=(n, n))
    A = A @ A.T + n * np.eye(n)
    b = rng.normal(size=n)
    x = np.zeros(n)
    for burst in range(20):
        with instr.region("cg-compute"):
            result = cg_solve(lambda v: A @ v, b, x0=x, tol=1e-10, max_iter=25)
            x = result.x
            clock["t"] += 1.0    # each burst 'runs' 1 s on the node
        with instr.region("halo-wait"):
            clock["t"] += 0.4    # 400 ms of MPI waiting
    print(f"solver: {len(instr.markers)} instrumented regions, "
          f"final residual {result.residual_norm:.2e}")
    return instr


def ground_truth_power(instr: Instrumentation, rate_hz: float = 400e3) -> PowerTrace:
    """Node power waveform implied by the instrumented phases."""
    t_end = max(m.t_exit_s for m in instr.markers)
    t = np.arange(0.0, t_end, 1.0 / rate_hz)
    p = np.full(t.size, WAIT_W)
    for m in instr.markers_for("cg-compute"):
        p[(t >= m.t_enter_s) & (t < m.t_exit_s)] = COMPUTE_W
    return PowerTrace(t, p)


def main() -> None:
    instr = run_instrumented_solver()
    truth = ground_truth_power(instr)
    print(f"ground truth: {truth.duration_s * 1e3:.0f} ms, "
          f"{truth.energy_j():.1f} J, mean {truth.mean_power_w():.0f} W")

    # The energy gateway measures and publishes; a collector re-assembles.
    # (For this 28 s demo we run the ADC at 100 kS/s instead of the
    # production 800 kS/s — identical physics, lighter arrays.)
    from repro.monitoring import GatewayConfig

    broker = MqttBroker()
    collector = broker.connect("collector")
    collector.subscribe("davide/node0/power/node", qos=1)
    eg = ClusterBuilder().build_gateway(
        0, broker=broker, config=GatewayConfig(adc_rate_hz=100e3, decimation=16))
    measured = eg.acquire_and_publish(truth)
    rebuilt = EnergyGateway.reassemble(collector.drain())
    print(f"\nenergy gateway @ {measured.sample_rate_hz / 1e3:.0f} kS/s:")
    print(f"  energy error: {measured.energy_error_fraction(truth) * 100:+.3f}%")
    print(f"  samples over MQTT: {len(rebuilt)}")

    # The IPMI baseline sees almost none of the phase structure.
    ipmi = IpmiMonitor(rng=np.random.default_rng(1)).measure(truth)
    print(f"\nIPMI-class poller @ 1 S/s:")
    print(f"  samples: {len(ipmi)}, energy error: "
          f"{ipmi.energy_error_fraction(truth) * 100:+.2f}%")

    # Region-level energy attribution from the EG's measured trace.
    profiler = PowerProfiler(measured)
    print("\nper-region profile (from measured power):")
    for name, prof in profiler.profile(instr.markers).items():
        print(f"  {name:12s}: {prof.n_instances} x, {prof.total_time_s * 1e3:6.1f} ms, "
              f"{prof.total_energy_j:7.2f} J, mean {prof.mean_power_w:7.1f} W")
    sep = profiler.region_power_separation(instr.markers, "cg-compute", "halo-wait")
    print(f"compute-vs-wait power separation: {sep:.0f} W "
          f"(truth {COMPUTE_W - WAIT_W:.0f} W)")


if __name__ == "__main__":
    main()
