#!/usr/bin/env python3
"""Campaign service tour: submit → poll → replay → crash → resume.

Runs the whole ROADMAP item-1 surface in one sitting: a
``CampaignService`` over an on-disk content-addressed store takes two
overlapping campaign submissions (the second replays its shared cells
from cache instead of simulating), a checkpointed campaign is killed
mid-grid and resumed to the same campaign digest, and the service's
``campaign`` ops-report section tallies it all.

Run:  python examples/campaign_service.py
"""

import tempfile
import time

from repro.observability import Observability
from repro.scheduler import (
    CampaignCheckpoint,
    CampaignService,
    CampaignConfig,
    DirectoryResultStore,
    Scenario,
    campaign_digest,
    resume_campaign,
    run_campaign,
)

BUDGET_W = 14e3


def main() -> None:
    config = CampaignConfig(n_nodes=12, n_jobs=60, root_seed=2026, load_factor=1.1)
    grid = [
        Scenario(policy=policy, cap_w=cap, seed_index=seed,
                 label=f"{policy}/{'cap' if cap else 'uncapped'}/s{seed}")
        for policy in ("fifo", "easy")
        for cap in (None, BUDGET_W)
        for seed in (0, 1)
    ]

    with tempfile.TemporaryDirectory(prefix="campaign-service-") as tmp:
        # 1. A service over a persistent content-addressed store.  Every
        #    result lands in the store keyed by scenario_key(config, s)
        #    — a digest of the *canonicalized* cell, so field order,
        #    default-equivalent spellings and cosmetic labels all hit
        #    the same entry.
        obs = Observability()
        store = DirectoryResultStore(f"{tmp}/store")
        service = CampaignService(store=store, observability=obs, processes=2)

        t0 = time.perf_counter()
        first = service.submit(config, grid, label="cold sweep")
        while not first.done():            # the poll half of the API
            s = first.status()
            print(f"  poll: {s['state']:<8} {s['completed']}/{s['total']}")
            time.sleep(0.2)
        cold = service.result(first)
        t_cold = time.perf_counter() - t0
        print(f"cold sweep: {len(cold)} cells in {t_cold:.2f} s, "
              f"digest {campaign_digest(cold)[:16]}…")

        # 2. A second user sweeps an overlapping grid: the shared cells
        #    replay from the store, only the novel ones simulate.
        widened = grid + [
            Scenario(policy="power-aware", cap_w=BUDGET_W, budget_w=BUDGET_W,
                     seed_index=seed, label=f"power-aware/s{seed}")
            for seed in (0, 1)
        ]
        second = service.submit(config, widened, label="overlapping sweep")
        service.result(second)
        s = second.status()
        print(f"overlapping sweep: {s['replayed']} replayed, "
              f"{s['simulated']} simulated (grid of {s['total']})")
        assert s["replayed"] == len(grid), "shared cells should replay"
        assert s["simulated"] == 2, "only the novel cells should simulate"

        # 3. Crash and resume: kill a checkpointed campaign partway,
        #    then stitch the rest — same digest as never having died.
        class Killed(Exception):
            pass

        def kill_after(n):
            seen = []

            def hook(cell, replayed):
                seen.append(cell)
                if len(seen) >= n:
                    raise Killed

            return hook

        fresh = CampaignConfig(n_nodes=12, n_jobs=60, root_seed=9,
                               load_factor=1.1)
        baseline = run_campaign(fresh, grid, processes=1)
        checkpoint = CampaignCheckpoint(f"{tmp}/checkpoint")
        try:
            run_campaign(fresh, grid, processes=1, checkpoint=checkpoint,
                         on_result=kill_after(3))
        except Killed:
            pass
        print(f"killed after {len(checkpoint)} cells "
              f"(checkpoint is durable per completed cell)")
        resumed = resume_campaign(fresh, grid, checkpoint, processes=1)
        assert campaign_digest(resumed) == campaign_digest(baseline), \
            "resume must equal the uninterrupted run"
        print(f"resumed: digest {campaign_digest(resumed)[:16]}… "
              f"(equals the uninterrupted run)")

        # 4. The ops report tallies the service traffic.
        report = obs.ops_report()["campaign"]
        print("\nops_report()['campaign']:")
        for key, value in report.items():
            print(f"  {key:<18}{value:>6.0f}")
        assert report["jobs_completed"] == 2
        assert report["cells_replayed"] == len(grid)


if __name__ == "__main__":
    main()
