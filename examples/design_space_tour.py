#!/usr/bin/env python3
"""Design-space tour: searching the scheduler knobs by name.

The paper hand-picks one production configuration (proactive dispatch
under a 45-node envelope). This example treats that choice as an
*optimization problem*: declare the knobs (``policy``, ``cap_w``,
``backfill_depth``) as a typed :class:`DesignSpace`, score each cell
with an energy/QoS :class:`Objective`, and let the registry-named
searchers walk the space through the content-addressed campaign cache —
revisited cells replay byte-identically, for free.

Shows three searchers over the same shared store (``random``, ``grid``,
``evolutionary``), then re-runs the evolutionary search warm to
demonstrate the zero-simulation replay.

Run:  python examples/design_space_tour.py
"""

from repro.explore import (
    Categorical,
    Continuous,
    DesignSpace,
    Integer,
    Objective,
    explore,
)
from repro.scheduler import CampaignConfig, MemoryResultStore

BUDGET = 16
SEED = 11


def main() -> None:
    # 1. The problem: 12 nodes under load, three knobs, one scalar
    #    score (joules plus 50 kJ for every second of p95 queue wait).
    config = CampaignConfig(n_nodes=12, n_jobs=60, root_seed=2026,
                            load_factor=1.1)
    space = DesignSpace({
        "policy": Categorical(("easy", "power-aware")),
        "cap_w": Continuous(7_000.0, 13_000.0),
        "backfill_depth": Integer(1, 8),
    })
    objective = Objective.blend({"total_energy_j": 1.0, "p95_wait_s": 5e4})
    print(f"space: {space} ({space.size(resolution=3)} cells at grid "
          f"resolution 3); objective: minimize {objective.name}")

    # 2. Three searchers, one shared content-addressed store: every
    #    simulation any searcher pays for is capital the others reuse.
    store = MemoryResultStore()
    print(f"\n{'searcher':<14}{'best fitness':>14}  best point"
          f"{'':<30}{'sim':>5}{'hits':>5}")
    traces = {}
    for name in ("random", "grid", "evolutionary"):
        trace = explore(space, objective, searcher=name, budget=BUDGET,
                        seed=SEED, config=config, cache=store)
        traces[name] = trace
        point = ", ".join(f"{k}={v:.0f}" if isinstance(v, float) else f"{k}={v}"
                          for k, v in trace.best_point.items())
        print(f"{name:<14}{trace.best_fitness:>14.4e}  {point:<40}"
              f"{trace.n_simulated:>5}{trace.n_cache_hits:>5}")

    # 3. Warm replay: the identical evolutionary search against the now
    #    warm store simulates *nothing* and digests identically.
    warm = explore(space, objective, searcher="evolutionary", budget=BUDGET,
                   seed=SEED, config=config, cache=store)
    cold = traces["evolutionary"]
    assert warm.digest() == cold.digest(), "cache state leaked into the trace"
    assert warm.n_simulated == 0, "warm replay re-simulated a cell"
    assert warm.cache_hit_fraction >= 0.5
    print(f"\nwarm evolutionary re-run: {warm.n_simulated} simulations, "
          f"{warm.n_cache_hits}/{len(warm.steps)} hits, digest "
          f"{warm.digest()[:16]}… (= cold)")

    # 4. The artifact: the convergence curve is the story of the search.
    curve = cold.best_fitness_curve()
    print(f"evolutionary convergence: {curve[0]:.4e} -> {curve[-1]:.4e} "
          f"over {len(curve)} evaluations")


if __name__ == "__main__":
    main()
