#!/usr/bin/env python3
"""Fault drill: break the cluster on purpose, audit every invariant.

A 16-node slice of the machine runs a 24-job campaign while the fault
injector tears pieces down — two node crashes, an MQTT broker outage, a
PSU failure in the rack power shelf, a sensor spike, a PTP clock-drift
excursion, plus seeded-random sensor faults — and the invariant checker
audits the cluster after every fault and every check period:

* the per-job energy ledger balances (no joules lost or double-counted
  across crash/requeue cycles);
* system power never exceeds the active cap beyond the controller's
  settling window;
* simulated time and per-node telemetry timestamps never run backwards;
* every job — including every crash-requeued job — completes.

The whole scenario is a pure function of its seed: run it twice and the
summaries (and the SHA-256 of the canonical event log) are identical.

Run:  python examples/fault_drill.py
"""

from repro.cluster import ClusterBuilder
from repro.faults import FaultKind, FaultSpec

SEED = 2026

CAMPAIGN = [
    FaultSpec(FaultKind.NODE_CRASH, at_s=22.0, duration_s=35.0, target=4),
    FaultSpec(FaultKind.NODE_CRASH, at_s=60.0, duration_s=25.0, target=11),
    FaultSpec(FaultKind.BROKER_OUTAGE, at_s=40.0, duration_s=14.0),
    FaultSpec(FaultKind.PSU_FAILURE, at_s=55.0, duration_s=45.0),
    FaultSpec(FaultKind.SENSOR_SPIKE, at_s=80.0, duration_s=9.0, target=2, magnitude=2500.0),
    FaultSpec(FaultKind.CLOCK_DRIFT, at_s=35.0, duration_s=30.0, target=13, magnitude=0.08),
]


def run_once() -> dict:
    drill = ClusterBuilder(n_nodes=16, seed=SEED).build_drill()
    report = drill.run(CAMPAIGN, extra_random_faults=3)
    return report.summary


def main() -> None:
    summary = run_once()

    print("--- fault campaign ---")
    for kind, count in summary["faults_by_kind"].items():
        print(f"  {kind:<16} x{count}")
    print(f"  injected {summary['faults_injected']}, "
          f"recovered {summary['faults_recovered']}")

    print("\n--- cluster outcome ---")
    print(f"  jobs: {summary['jobs_completed']}/{summary['jobs_submitted']} completed, "
          f"{summary['total_requeues']} crash-requeue(s)")
    print(f"  makespan: {summary['makespan_s']:.1f} s")
    print(f"  energy: {summary['total_energy_j'] / 1e6:.2f} MJ total "
          f"({summary['jobs_energy_j'] / 1e6:.2f} MJ billed to jobs, "
          f"{summary['idle_energy_j'] / 1e6:.2f} MJ idle)")
    print(f"  telemetry: {summary['gateway_republished']} samples re-published "
          f"after {summary['gateway_reconnects']} gateway reconnects, "
          f"{summary['failsafe_engagements']} fail-safe engagement(s)")

    print("\n--- invariant audit ---")
    print(f"  {summary['invariant_checks']} checks, "
          f"{summary['violations']} violations")
    print(f"  event log: {summary['log_events']} events, "
          f"sha256 {summary['log_digest'][:16]}…")

    assert summary["violations"] == 0, "invariant violated — see checker output"
    assert summary["jobs_completed"] == summary["jobs_submitted"]

    # Determinism: the same seed replays to the same byte-identical log.
    again = run_once()
    assert again == summary, "same-seed rerun diverged!"
    print("\nsame-seed rerun: identical summary and log digest — reproducible.")


if __name__ == "__main__":
    main()
